#![warn(missing_docs)]

//! Synapse: SYNthetic Application Profiler and Emulator.
//!
//! This is the Rust reproduction of the system described in
//! *"Synapse: Synthetic Application Profiler and Emulator"* (Merzky,
//! Ha, Turilli, Jha). Synapse is a proxy-application toolkit built
//! around two operations, mirroring the paper's Python API:
//!
//! ```no_run
//! use synapse::api;
//! use synapse::config::ProfilerConfig;
//! use synapse::emulator::EmulationPlan;
//! use synapse_store::FileStore;
//!
//! let store = FileStore::open("/tmp/synapse-profiles").unwrap();
//! // radical.synapse.profile(command, tags=...)
//! let outcome = api::profile(
//!     "sleep 0.1",
//!     None,
//!     &store,
//!     &ProfilerConfig::default(),
//! ).unwrap();
//! // radical.synapse.emulate(command, tags=...)
//! let report = api::emulate("sleep 0.1", None, &store, &EmulationPlan::default()).unwrap();
//! println!("application Tx = {:.3}s, emulated Tx = {:.3}s",
//!          outcome.profile.runtime, report.tx);
//! ```
//!
//! * **Profiling** (`profile`) spawns the application, hands its PID
//!   to watcher plugins — one thread each, sampling CPU counters,
//!   `/proc` memory and disk-I/O state at a configurable rate (max
//!   10 Hz, like `perf stat`) — and stores the combined time series as
//!   a [`synapse_model::Profile`] indexed by `(command, tags)`.
//! * **Emulation** (`emulate`) looks the profile up and replays it:
//!   each sample's resource deltas are fed concurrently to emulation
//!   atoms (compute / memory / storage / network); a sample ends when
//!   the last atom finishes, preserving sample order across resource
//!   types but not timing (§4.4 of the paper).
//!
//! Emulation can run on the **real backend** (actually consume this
//! host's resources) or on a **simulated machine model**
//! ([`synapse_sim::MachineModel`]) with a virtual clock — that is how
//! the cross-resource experiments (Stampede, Archer, Comet, Supermic,
//! Titan) are reproduced without the original testbeds.

pub mod api;
pub mod config;
pub mod emulator;
pub mod error;
pub mod profiler;
pub mod schedule;
pub mod stress;
pub mod watcher;
pub mod watchers;

pub use api::{emulate, profile};
pub use config::ProfilerConfig;
pub use emulator::{EmulationPlan, EmulationReport, Emulator, KernelChoice};
pub use error::SynapseError;
pub use profiler::{ProfileOutcome, Profiler};
pub use stress::StressLoad;
