//! The disk watcher: per-interval I/O deltas from `/proc/<pid>/io`.
//!
//! Uses the syscall-level counters (`rchar`/`wchar`, `syscr`/`syscw`):
//! the paper's emulation replays what the *application* asked for —
//! cache hits included — and block sizes derive from bytes/ops, which
//! feeds the experimental block-size watcher mentioned in §4.2.

use synapse_model::Sample;
use synapse_proc::{read_pid_io, PidIo, ProcError};

use crate::error::SynapseError;
use crate::watcher::{PartialSample, Watcher};

/// Watcher sampling disk I/O of one process.
pub struct IoWatcher {
    pid: i32,
    last: PidIo,
    /// Set if the kernel denies reading the target's io file; the
    /// watcher then degrades to all-zero samples instead of failing
    /// the whole profile (black-box principle: never break the app).
    denied: bool,
    gone: bool,
}

impl IoWatcher {
    /// Create an I/O watcher for a process.
    pub fn new(pid: i32) -> Self {
        IoWatcher {
            pid,
            last: PidIo::default(),
            denied: false,
            gone: false,
        }
    }
}

impl Watcher for IoWatcher {
    fn name(&self) -> &'static str {
        "io"
    }

    fn pre_process(&mut self) -> Result<(), SynapseError> {
        match read_pid_io(self.pid) {
            Ok(io) => self.last = io,
            Err(ProcError::Io(e)) if e.kind() == std::io::ErrorKind::PermissionDenied => {
                self.denied = true;
            }
            Err(ProcError::ProcessGone(_)) => self.gone = true,
            Err(e) => return Err(e.into()),
        }
        Ok(())
    }

    fn sample(&mut self, t: f64, dt: f64) -> Result<PartialSample, SynapseError> {
        let mut out = Sample::at(t, dt);
        if self.denied || self.gone {
            return Ok(out);
        }
        match read_pid_io(self.pid) {
            Ok(io) => {
                let delta = io.delta_since(&self.last);
                self.last = io;
                out.storage.bytes_read = delta.rchar;
                out.storage.bytes_written = delta.wchar;
                out.storage.read_ops = delta.syscr;
                out.storage.write_ops = delta.syscw;
            }
            Err(ProcError::ProcessGone(_)) => {
                self.gone = true; // final deltas were already captured
            }
            Err(ProcError::Io(e)) if e.kind() == std::io::ErrorKind::PermissionDenied => {
                self.denied = true;
            }
            Err(e) => return Err(e.into()),
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn observes_own_writes_when_permitted() {
        let me = std::process::id() as i32;
        let mut w = IoWatcher::new(me);
        w.pre_process().unwrap();
        if w.denied {
            // Container denies /proc/<pid>/io: the watcher degrades.
            let s = w.sample(0.0, 0.1).unwrap();
            assert_eq!(s.storage.bytes_written, 0);
            return;
        }
        let path = std::env::temp_dir().join(format!("synapse-iow-{me}"));
        let mut f = std::fs::File::create(&path).unwrap();
        f.write_all(&vec![9u8; 100_000]).unwrap();
        f.flush().unwrap();
        drop(f);
        let s = w.sample(0.0, 0.1).unwrap();
        assert!(
            s.storage.bytes_written >= 100_000,
            "wrote 100k, saw {}",
            s.storage.bytes_written
        );
        assert!(s.storage.write_ops >= 1);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn vanished_process_degrades_to_zero_samples() {
        let mut w = IoWatcher::new(i32::MAX);
        w.pre_process().unwrap();
        assert!(w.gone);
        let s = w.sample(0.0, 0.1).unwrap();
        assert_eq!(s.storage.bytes_read, 0);
    }

    #[test]
    fn deltas_reset_between_samples() {
        let me = std::process::id() as i32;
        let mut w = IoWatcher::new(me);
        w.pre_process().unwrap();
        if w.denied {
            return;
        }
        let _ = w.sample(0.0, 0.1).unwrap();
        // No deliberate I/O between these two samples: small delta.
        let s2 = w.sample(0.1, 0.1).unwrap();
        assert!(
            s2.storage.bytes_written < 10_000_000,
            "delta not cumulative: {}",
            s2.storage.bytes_written
        );
    }
}
