//! The CPU watcher: hardware counters plus thread-count gauge.
//!
//! Equivalent to the paper's `perf stat` wrapper — it samples cycles,
//! retired instructions and stalled cycles for the observed process
//! (through `synapse-perf`, which transparently falls back to the
//! calibrated model where the kernel denies counters) and reads the
//! thread count from `/proc/<pid>/stat`.

use synapse_model::Sample;
use synapse_perf::{CounterProvider, CounterSession, CounterSnapshot};
use synapse_proc::read_pid_stat;

use crate::error::SynapseError;
use crate::watcher::{PartialSample, Watcher};

/// Watcher sampling CPU activity of one process.
pub struct CpuWatcher {
    pid: i32,
    provider: Box<dyn CounterProvider>,
    session: Option<Box<dyn CounterSession>>,
    last: CounterSnapshot,
    flops_per_cycle: f64,
}

impl CpuWatcher {
    /// Create a CPU watcher for a process using a counter provider.
    pub fn new(pid: i32, provider: Box<dyn CounterProvider>) -> Self {
        CpuWatcher {
            pid,
            provider,
            session: None,
            last: CounterSnapshot::default(),
            // FLOPs are not directly counted by the basic hardware
            // group; like the paper we derive them from instructions
            // with a workload-class factor (Table 1 lists FLOPs as a
            // derived metric).
            flops_per_cycle: 0.5,
        }
    }

    /// Override the FLOPs-per-cycle derivation factor.
    pub fn with_flops_per_cycle(mut self, f: f64) -> Self {
        self.flops_per_cycle = f.max(0.0);
        self
    }
}

impl Watcher for CpuWatcher {
    fn name(&self) -> &'static str {
        "cpu"
    }

    fn pre_process(&mut self) -> Result<(), SynapseError> {
        // A short-lived application may exit before the watcher
        // attaches; the black-box principle says degrade to an empty
        // series, never fail the profiling run.
        match self.provider.attach(self.pid) {
            Ok(session) => self.session = Some(session),
            Err(synapse_perf::PerfError::ProcessGone(_)) => self.session = None,
            Err(e) => return Err(e.into()),
        }
        self.last = CounterSnapshot::default();
        Ok(())
    }

    fn sample(&mut self, t: f64, dt: f64) -> Result<PartialSample, SynapseError> {
        let mut out = Sample::at(t, dt);
        let Some(session) = self.session.as_mut() else {
            return Ok(out); // process vanished before attach
        };
        let snap = match session.snapshot() {
            Ok(snap) => snap,
            Err(synapse_perf::PerfError::ProcessGone(_)) => self.last,
            Err(e) => return Err(e.into()),
        };
        let delta = snap.delta_since(&self.last);
        self.last = snap;
        out.compute.cycles = delta.cycles;
        out.compute.instructions = delta.instructions;
        out.compute.stalled_frontend = delta.stalled_frontend;
        out.compute.stalled_backend = delta.stalled_backend;
        out.compute.flops = (delta.cycles as f64 * self.flops_per_cycle) as u64;
        // Thread gauge; a vanished process keeps the last value (0 ->
        // defaults to a single thread in derived metrics). Pid 0 means
        // "the calling process" to the counter layer.
        let stat_pid = if self.pid == 0 {
            std::process::id() as i32
        } else {
            self.pid
        };
        if let Ok(stat) = read_pid_stat(stat_pid) {
            out.compute.threads = stat.num_threads;
        }
        Ok(out)
    }

    fn post_process(&mut self) -> Result<(), SynapseError> {
        self.session = None;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synapse_perf::calibrated::{CalibratedProvider, CounterModel};
    use synapse_perf::calibration::spin_cycles;

    fn self_watcher() -> CpuWatcher {
        // Fixed-frequency model: tests need no calibration delay.
        let provider = CalibratedProvider::with_model(CounterModel {
            frequency_hz: Some(1e9),
            ..CounterModel::default()
        });
        CpuWatcher::new(0, Box::new(provider))
    }

    #[test]
    fn observes_own_cpu_burn() {
        let mut w = self_watcher();
        w.pre_process().unwrap();
        let _ = w.sample(0.0, 0.1).unwrap(); // baseline interval
        std::hint::black_box(spin_cycles(80_000_000));
        let s = w.sample(0.1, 0.1).unwrap();
        assert!(s.compute.cycles > 0, "burn must show up");
        assert!(s.compute.instructions > 0);
        assert!(s.compute.threads >= 1);
        w.post_process().unwrap();
    }

    #[test]
    fn deltas_do_not_double_count() {
        let mut w = self_watcher();
        w.pre_process().unwrap();
        std::hint::black_box(spin_cycles(40_000_000));
        let a = w.sample(0.0, 0.1).unwrap();
        // No work between samples: delta should be (near) zero.
        let b = w.sample(0.1, 0.1).unwrap();
        assert!(
            b.compute.cycles < a.compute.cycles / 2 + 1_000_000,
            "second interval ({}) must not re-report the first ({})",
            b.compute.cycles,
            a.compute.cycles
        );
    }

    #[test]
    fn sample_without_session_degrades_to_empty() {
        // Before pre_process (or after the process vanished) there is
        // no counter session: samples are empty, not errors.
        let mut w = self_watcher();
        let s = w.sample(0.0, 0.1).unwrap();
        assert_eq!(s.compute.cycles, 0);
    }

    #[test]
    fn flops_follow_cycles() {
        let mut w = self_watcher().with_flops_per_cycle(2.0);
        w.pre_process().unwrap();
        std::hint::black_box(spin_cycles(40_000_000));
        let s = w.sample(0.0, 0.1).unwrap();
        assert_eq!(s.compute.flops, s.compute.cycles * 2);
    }
}
