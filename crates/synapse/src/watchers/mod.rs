//! The concrete watcher plugins: CPU (hardware counters), memory
//! (`/proc/<pid>/status`) and disk I/O (`/proc/<pid>/io`).
//!
//! Each corresponds to one Watcher box in Figure 1 of the paper.

pub mod cpu;
pub mod io;
pub mod mem;

pub use cpu::CpuWatcher;
pub use io::IoWatcher;
pub use mem::MemWatcher;
