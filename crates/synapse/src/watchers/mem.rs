//! The memory watcher: RSS/peak gauges from `/proc/<pid>/status`,
//! allocation deltas derived in `finalize`.
//!
//! Per Table 1, `bytes allocated` and `bytes freed` are *derived*
//! metrics: the watcher samples resident-set gauges and, during
//! finalization, converts RSS growth into allocation deltas and RSS
//! shrinkage into free deltas (plus a final free of the remaining
//! residency so emulation releases what it held).

use synapse_model::Sample;
use synapse_proc::{read_pid_status, PidStatus, ProcError};

use crate::error::SynapseError;
use crate::watcher::{PartialSample, Watcher};

/// Watcher sampling memory state of one process.
pub struct MemWatcher {
    pid: i32,
    last_good: PidStatus,
}

impl MemWatcher {
    /// Create a memory watcher for a process.
    pub fn new(pid: i32) -> Self {
        MemWatcher {
            pid,
            last_good: PidStatus::default(),
        }
    }
}

impl Watcher for MemWatcher {
    fn name(&self) -> &'static str {
        "mem"
    }

    fn sample(&mut self, t: f64, dt: f64) -> Result<PartialSample, SynapseError> {
        let mut out = Sample::at(t, dt);
        match read_pid_status(self.pid) {
            Ok(status) => {
                self.last_good = status;
            }
            Err(ProcError::ProcessGone(_)) => {
                // Keep the last observation: the final interval reports
                // the state just before exit.
            }
            Err(e) => return Err(e.into()),
        }
        out.memory.rss = self.last_good.vm_rss;
        out.memory.peak = self.last_good.vm_hwm.max(self.last_good.vm_rss);
        Ok(out)
    }

    fn finalize(&mut self, series: &mut Vec<PartialSample>) -> Result<(), SynapseError> {
        let mut prev_rss = 0u64;
        for s in series.iter_mut() {
            let rss = s.memory.rss;
            if rss >= prev_rss {
                s.memory.allocated = rss - prev_rss;
                s.memory.freed = 0;
            } else {
                s.memory.allocated = 0;
                s.memory.freed = prev_rss - rss;
            }
            prev_rss = rss;
        }
        // Final free: the process exit releases the remaining residency.
        if let Some(last) = series.last_mut() {
            last.memory.freed += prev_rss;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observes_own_rss() {
        let mut w = MemWatcher::new(0);
        // pid 0 is not valid for /proc; use the real self pid.
        let mut w_self = MemWatcher::new(std::process::id() as i32);
        let s = w_self.sample(0.0, 0.1).unwrap();
        assert!(s.memory.rss > 0);
        assert!(s.memory.peak >= s.memory.rss);
        // pid 0 path: falls back to last_good (zero) without error.
        let s0 = w.sample(0.0, 0.1).unwrap();
        assert_eq!(s0.memory.rss, 0);
    }

    #[test]
    fn finalize_derives_alloc_and_free_deltas() {
        let mut w = MemWatcher::new(1);
        let mut series: Vec<Sample> = [1000u64, 3000, 2500, 2500]
            .iter()
            .enumerate()
            .map(|(i, &rss)| {
                let mut s = Sample::at(i as f64, 1.0);
                s.memory.rss = rss;
                s
            })
            .collect();
        w.finalize(&mut series).unwrap();
        assert_eq!(series[0].memory.allocated, 1000);
        assert_eq!(series[1].memory.allocated, 2000);
        assert_eq!(series[2].memory.freed, 500);
        assert_eq!(series[3].memory.allocated, 0);
        // Final sample frees the remaining residency.
        assert_eq!(series[3].memory.freed, 2500);
        // Conservation: total allocated == total freed.
        let alloc: u64 = series.iter().map(|s| s.memory.allocated).sum();
        let freed: u64 = series.iter().map(|s| s.memory.freed).sum();
        assert_eq!(alloc, freed);
    }

    #[test]
    fn finalize_on_empty_series_is_fine() {
        let mut w = MemWatcher::new(1);
        let mut series: Vec<Sample> = Vec::new();
        w.finalize(&mut series).unwrap();
        assert!(series.is_empty());
    }

    #[test]
    fn vanished_process_keeps_last_observation() {
        let me = std::process::id() as i32;
        let mut w = MemWatcher::new(me);
        let s1 = w.sample(0.0, 0.1).unwrap();
        // Simulate the process vanishing by switching to a dead pid.
        w.pid = i32::MAX;
        let s2 = w.sample(0.1, 0.1).unwrap();
        assert_eq!(s2.memory.rss, s1.memory.rss);
    }
}
