//! Sampling schedules: constant and adaptive rates.
//!
//! The paper's future work (§6, "Sampling Rate") proposes "an adaptive
//! scheme, starting with a high sampling rate (10/sec), and after a
//! few seconds, when we can expect to have captured the application
//! startup, decrease the rate", noting that "Synapse's codebase does
//! not assume a constant rate". This module implements both schemes;
//! the watcher loop and series combination are schedule-driven, so
//! samples may have varying `dt`.

use crate::config::MAX_SAMPLE_RATE_HZ;
use crate::error::SynapseError;

/// When each sample happens and how long its interval is.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SampleSchedule {
    /// Fixed rate: sample `i` covers `[i/hz, (i+1)/hz)`.
    Constant {
        /// Sampling rate in Hz.
        hz: f64,
    },
    /// High initial rate for the startup window, lower rate after —
    /// the paper's proposed adaptive scheme.
    Adaptive {
        /// Rate during the startup window, Hz (clamped to 10 Hz).
        initial_hz: f64,
        /// Length of the startup window in seconds.
        window_secs: f64,
        /// Rate after the window, Hz.
        steady_hz: f64,
    },
}

impl SampleSchedule {
    /// A constant schedule at `hz` (validated and clamped like the
    /// profiler config).
    pub fn constant(hz: f64) -> Result<Self, SynapseError> {
        if !hz.is_finite() || hz <= 0.0 {
            return Err(SynapseError::Config(format!("rate {hz} must be positive")));
        }
        Ok(SampleSchedule::Constant {
            hz: hz.min(MAX_SAMPLE_RATE_HZ),
        })
    }

    /// The paper's proposed default adaptation: 10 Hz for the first
    /// `window_secs`, then `steady_hz`.
    pub fn adaptive(window_secs: f64, steady_hz: f64) -> Result<Self, SynapseError> {
        if !window_secs.is_finite() || window_secs < 0.0 {
            return Err(SynapseError::Config(format!(
                "window {window_secs} must be >= 0"
            )));
        }
        if !steady_hz.is_finite() || steady_hz <= 0.0 {
            return Err(SynapseError::Config(format!(
                "steady rate {steady_hz} must be positive"
            )));
        }
        Ok(SampleSchedule::Adaptive {
            initial_hz: MAX_SAMPLE_RATE_HZ,
            window_secs,
            steady_hz: steady_hz.min(MAX_SAMPLE_RATE_HZ),
        })
    }

    /// Number of samples inside the startup window (adaptive only).
    fn window_samples(&self) -> u64 {
        match *self {
            SampleSchedule::Constant { .. } => 0,
            SampleSchedule::Adaptive {
                initial_hz,
                window_secs,
                ..
            } => (window_secs * initial_hz).ceil() as u64,
        }
    }

    /// Start time of sample `index`, seconds since profiling start.
    pub fn time_of(&self, index: u64) -> f64 {
        match *self {
            SampleSchedule::Constant { hz } => index as f64 / hz,
            SampleSchedule::Adaptive {
                initial_hz,
                steady_hz,
                ..
            } => {
                let n = self.window_samples();
                if index <= n {
                    index as f64 / initial_hz
                } else {
                    n as f64 / initial_hz + (index - n) as f64 / steady_hz
                }
            }
        }
    }

    /// Interval length of sample `index` in seconds.
    pub fn dt_of(&self, index: u64) -> f64 {
        self.time_of(index + 1) - self.time_of(index)
    }

    /// The *steady* rate in Hz (what gets recorded as the profile's
    /// nominal rate).
    pub fn steady_hz(&self) -> f64 {
        match *self {
            SampleSchedule::Constant { hz } => hz,
            SampleSchedule::Adaptive { steady_hz, .. } => steady_hz,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_schedule_is_uniform() {
        let s = SampleSchedule::constant(4.0).unwrap();
        for i in 0..10 {
            assert!((s.time_of(i) - i as f64 * 0.25).abs() < 1e-12);
            assert!((s.dt_of(i) - 0.25).abs() < 1e-12);
        }
        assert_eq!(s.steady_hz(), 4.0);
    }

    #[test]
    fn constant_clamps_to_ceiling() {
        let s = SampleSchedule::constant(50.0).unwrap();
        assert_eq!(s.steady_hz(), MAX_SAMPLE_RATE_HZ);
        assert!(SampleSchedule::constant(0.0).is_err());
        assert!(SampleSchedule::constant(f64::NAN).is_err());
    }

    #[test]
    fn adaptive_switches_after_window() {
        // 10 Hz for 2 s (20 samples), then 1 Hz.
        let s = SampleSchedule::adaptive(2.0, 1.0).unwrap();
        assert!((s.dt_of(0) - 0.1).abs() < 1e-12);
        assert!((s.dt_of(19) - 0.1).abs() < 1e-12);
        assert!((s.dt_of(20) - 1.0).abs() < 1e-12);
        assert!((s.time_of(20) - 2.0).abs() < 1e-12);
        assert!((s.time_of(22) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn adaptive_time_is_strictly_increasing() {
        let s = SampleSchedule::adaptive(1.5, 0.5).unwrap();
        let mut last = -1.0;
        for i in 0..50 {
            let t = s.time_of(i);
            assert!(t > last);
            last = t;
            assert!(s.dt_of(i) > 0.0);
        }
    }

    #[test]
    fn adaptive_rejects_bad_parameters() {
        assert!(SampleSchedule::adaptive(-1.0, 1.0).is_err());
        assert!(SampleSchedule::adaptive(1.0, 0.0).is_err());
        assert!(SampleSchedule::adaptive(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn zero_window_adaptive_degenerates_to_steady() {
        let s = SampleSchedule::adaptive(0.0, 2.0).unwrap();
        assert!((s.dt_of(0) - 0.5).abs() < 1e-12);
        assert!((s.dt_of(5) - 0.5).abs() < 1e-12);
    }
}
