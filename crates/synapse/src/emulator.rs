//! The emulation engine: replay a profile through resource atoms.
//!
//! "Synapse retrieves the profile and feeds all samples it contains to
//! the emulation atoms in the order in which the samples have been
//! collected" (§4). Within a sample, "all resource consumptions ...
//! are started immediately and concurrently ... Emulation samples end
//! when the last resource consumption is completed for that sample"
//! (§4.4).
//!
//! Two backends share the plan and semantics:
//!
//! * [`Emulator::emulate`] — the **real backend**: burns actual CPU
//!   cycles through a [`ComputeKernel`], writes actual files, holds
//!   actual memory, moves actual loopback bytes; one thread per atom
//!   per sample, exactly the paper's execution model.
//! * [`Emulator::simulate`] — the **simulated backend**: prices every
//!   demand against a [`MachineModel`] and advances a virtual clock;
//!   this is how the cross-resource experiments run without the
//!   original testbeds (substitution documented in DESIGN.md).

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use synapse_atoms::{
    CMatmulKernel, ComputeKernel, InCacheAsmKernel, MemoryAtom, NetworkAtom, SpinKernel,
    StorageAtom,
};
use synapse_model::{Profile, Sample};
use synapse_sim::{FsKind, IoOp, KernelClass, MachineModel, ParallelMode, VirtualClock};

use crate::error::SynapseError;

/// Which compute kernel the emulation uses (§4.2: "Atom
/// implementations are interchangeable").
#[derive(Clone)]
pub enum KernelChoice {
    /// The in-cache "assembly" kernel: maximum efficiency (default).
    Asm,
    /// The out-of-cache C kernel: realistic memory access.
    C,
    /// A fine-grained integer spin kernel (tests, minimal overshoot).
    Spin,
    /// A user-provided kernel (the paper's fidelity escape hatch).
    Custom(Arc<dyn ComputeKernel>),
}

impl KernelChoice {
    /// Materialize the kernel.
    pub fn build(&self) -> Arc<dyn ComputeKernel> {
        match self {
            KernelChoice::Asm => Arc::new(InCacheAsmKernel::new()),
            KernelChoice::C => Arc::new(CMatmulKernel::new()),
            KernelChoice::Spin => Arc::new(SpinKernel),
            KernelChoice::Custom(k) => k.clone(),
        }
    }

    /// The modelled kernel class (for the simulated backend).
    pub fn class(&self) -> KernelClass {
        match self {
            KernelChoice::Asm | KernelChoice::Spin => KernelClass::AsmMatmul,
            KernelChoice::C => KernelClass::CMatmul,
            KernelChoice::Custom(k) => k.class(),
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            KernelChoice::Asm => "asm",
            KernelChoice::C => "c",
            KernelChoice::Spin => "spin",
            KernelChoice::Custom(_) => "custom",
        }
    }
}

impl std::fmt::Debug for KernelChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "KernelChoice::{}", self.name())
    }
}

/// How to replay a profile: kernel, parallelism, I/O granularity,
/// target filesystem — the malleability dimensions of E.3–E.5.
#[derive(Debug, Clone)]
pub struct EmulationPlan {
    /// Compute kernel choice.
    pub kernel: KernelChoice,
    /// OpenMP-style thread width for the compute atom.
    pub threads: u32,
    /// Parallel mode used when pricing parallel emulation on a model.
    pub mode: ParallelMode,
    /// Directory for the storage atom's scratch file ("any available
    /// filesystem", E.5).
    pub io_dir: PathBuf,
    /// Write block size (E.5's granularity dimension).
    pub io_write_block: u64,
    /// Read block size.
    pub io_read_block: u64,
    /// Memory atom allocation block size.
    pub mem_block: u64,
    /// Target filesystem kind on the simulated backend.
    pub target_fs: Option<FsKind>,
    /// Enable the compute atom.
    pub emulate_compute: bool,
    /// Enable the memory atom.
    pub emulate_memory: bool,
    /// Enable the storage atom.
    pub emulate_storage: bool,
    /// Enable the network atom.
    pub emulate_network: bool,
    /// Preserve sample order across resource types (§4.4). Disabling
    /// this merges the whole profile into one sample — the ordering
    /// ablation of Fig. 2.
    pub preserve_sample_order: bool,
    /// Worker executable for process-based (MPI-analogue) parallelism
    /// on the real backend: when `mode` is [`ParallelMode::Mpi`] and
    /// `threads > 1`, the compute budget is split across spawned
    /// worker processes running `<worker> worker --kernel K --cycles N`
    /// (the `synapse` CLI provides that subcommand). `None` falls back
    /// to thread parallelism.
    pub worker_binary: Option<PathBuf>,
    /// Fixed emulator startup overhead on the simulated backend (the
    /// paper measures ~1 s for the Python implementation).
    pub sim_startup_seconds: f64,
}

impl Default for EmulationPlan {
    fn default() -> Self {
        EmulationPlan {
            kernel: KernelChoice::Asm,
            threads: 1,
            mode: ParallelMode::OpenMp,
            io_dir: std::env::temp_dir(),
            io_write_block: 1 << 20,
            io_read_block: 1 << 20,
            mem_block: 1 << 20,
            target_fs: None,
            emulate_compute: true,
            emulate_memory: true,
            emulate_storage: true,
            emulate_network: true,
            preserve_sample_order: true,
            worker_binary: None,
            sim_startup_seconds: 1.0,
        }
    }
}

impl EmulationPlan {
    /// Derive a plan from a profile: adopt the *profiled* I/O
    /// granularity (the paper's §6 plan for the blktrace data —
    /// "using this data in Synapse emulation when applications require
    /// that granularity") and the profiled thread width.
    pub fn from_profile(profile: &Profile) -> Self {
        let g = synapse_model::io_granularity(profile);
        let clamp = |b: u64| b.clamp(512, 64 << 20);
        EmulationPlan {
            io_write_block: g.write_block.map(clamp).unwrap_or(1 << 20),
            io_read_block: g.read_block.map(clamp).unwrap_or(1 << 20),
            threads: profile.totals().max_threads.max(1),
            ..Default::default()
        }
    }
}

/// Aggregate of what an emulation consumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConsumedTotals {
    /// Cycles the compute atom was directed to consume.
    pub directed_cycles: u64,
    /// Cycles actually consumed (≥ directed; kernel quantization).
    pub cycles: u64,
    /// Instructions retired (simulated backend: consumed × kernel
    /// IPC; real backend: 0 unless measured externally).
    pub instructions: u64,
    /// Bytes read from storage.
    pub bytes_read: u64,
    /// Bytes written to storage.
    pub bytes_written: u64,
    /// Bytes allocated.
    pub mem_allocated: u64,
    /// Bytes freed.
    pub mem_freed: u64,
    /// Bytes sent over the network.
    pub net_sent: u64,
    /// Bytes received over the network.
    pub net_recv: u64,
}

/// Result of one emulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct EmulationReport {
    /// Emulated execution time Tx in seconds (wall clock on the real
    /// backend, virtual on the simulated one).
    pub tx: f64,
    /// Samples replayed.
    pub samples: usize,
    /// Resource consumption totals.
    pub consumed: ConsumedTotals,
    /// Backend tag (`"real"` or `"sim:<machine>"`).
    pub backend: String,
}

/// The emulation engine.
pub struct Emulator {
    plan: EmulationPlan,
}

impl Emulator {
    /// An emulator with the given plan.
    pub fn new(plan: EmulationPlan) -> Self {
        Emulator { plan }
    }

    /// The active plan.
    pub fn plan(&self) -> &EmulationPlan {
        &self.plan
    }

    /// Prepare the sample sequence for replay: ordered as profiled, or
    /// merged into one all-concurrent sample when order preservation
    /// is disabled (ablation).
    fn replay_samples(&self, profile: &Profile) -> Vec<Sample> {
        if self.plan.preserve_sample_order || profile.samples.len() <= 1 {
            profile.samples.clone()
        } else {
            let mut merged = profile.samples[0];
            for s in &profile.samples[1..] {
                merged = merged.absorb(s);
            }
            vec![merged]
        }
    }

    /// Replay a profile on the **real backend**, consuming this host's
    /// resources.
    pub fn emulate(&self, profile: &Profile) -> Result<EmulationReport, SynapseError> {
        let start = Instant::now();
        let kernel = self.plan.kernel.build();
        let mut memory = MemoryAtom::with_config(self.plan.mem_block, 1 << 30);
        let mut storage = StorageAtom::with_config(
            &self.plan.io_dir,
            self.plan.io_write_block,
            self.plan.io_read_block,
            256 << 20,
        )?;
        let needs_network = self.plan.emulate_network
            && profile
                .samples
                .iter()
                .any(|s| s.network.bytes_sent > 0 || s.network.bytes_recv > 0);
        let mut network = if needs_network {
            Some(NetworkAtom::new()?)
        } else {
            None
        };

        let samples = self.replay_samples(profile);
        let mut consumed = ConsumedTotals::default();

        for sample in &samples {
            // Per-sample demands, gated by the plan's enable flags.
            let cycles = if self.plan.emulate_compute {
                sample.compute.cycles
            } else {
                0
            };
            let (alloc, free) = if self.plan.emulate_memory {
                (sample.memory.allocated, sample.memory.freed)
            } else {
                (0, 0)
            };
            let (rd, wr) = if self.plan.emulate_storage {
                (sample.storage.bytes_read, sample.storage.bytes_written)
            } else {
                (0, 0)
            };
            let (sent, recv) = if self.plan.emulate_network {
                (sample.network.bytes_sent, sample.network.bytes_recv)
            } else {
                (0, 0)
            };

            // All atoms start concurrently; the sample ends when the
            // last one finishes (scope join = the paper's barrier).
            let kernel_ref = kernel.as_ref();
            let threads = self.plan.threads;
            let mode = self.plan.mode;
            let worker = self.plan.worker_binary.as_deref();
            let kernel_name = self.plan.kernel.name();
            let mut compute_cycles = 0u64;
            let mut io_result: std::io::Result<()> = Ok(());
            let mut net_result: std::io::Result<()> = Ok(());
            std::thread::scope(|scope| {
                let compute_handle = (cycles > 0).then(|| {
                    scope.spawn(move || {
                        run_cycles(kernel_ref, kernel_name, cycles, threads, mode, worker)
                    })
                });
                let storage_handle = ((rd + wr) > 0).then(|| {
                    let storage = &mut storage;
                    scope.spawn(move || storage.consume(rd, wr).map(|_| ()))
                });
                let memory_handle = ((alloc + free) > 0).then(|| {
                    let memory = &mut memory;
                    scope.spawn(move || {
                        memory.consume(alloc, free);
                    })
                });
                let network_handle = network
                    .as_mut()
                    .filter(|_| sent + recv > 0)
                    .map(|net| scope.spawn(move || net.consume(sent, recv).map(|_| ())));

                if let Some(h) = compute_handle {
                    compute_cycles = h.join().expect("compute atom panicked");
                }
                if let Some(h) = storage_handle {
                    io_result = h.join().expect("storage atom panicked");
                }
                if let Some(h) = memory_handle {
                    h.join().expect("memory atom panicked");
                }
                if let Some(h) = network_handle {
                    net_result = h.join().expect("network atom panicked");
                }
            });
            io_result?;
            net_result?;

            consumed.directed_cycles += cycles;
            consumed.cycles += compute_cycles;
            consumed.bytes_read += rd;
            consumed.bytes_written += wr;
            consumed.mem_allocated += alloc;
            consumed.mem_freed += free;
            consumed.net_sent += sent;
            consumed.net_recv += recv;
        }

        memory.release_all();
        storage.cleanup();
        if let Some(net) = network.take() {
            net.shutdown();
        }

        Ok(EmulationReport {
            tx: start.elapsed().as_secs_f64(),
            samples: samples.len(),
            consumed,
            backend: "real".into(),
        })
    }

    /// Replay a profile on the **simulated backend**: price every
    /// demand against a machine model and advance a virtual clock.
    pub fn simulate(&self, profile: &Profile, machine: &MachineModel) -> EmulationReport {
        let class = self.plan.kernel.class();
        let kprofile = machine.kernel(class);
        let fs = self.plan.target_fs.unwrap_or(machine.default_fs);
        let workers = self.plan.threads.max(1);
        let pmodel = machine.parallel(self.plan.mode);

        let mut clock = VirtualClock::new();
        clock.advance(self.plan.sim_startup_seconds);
        if workers > 1 {
            // Worker pool launch cost, once per emulation.
            clock.advance(pmodel.startup_fixed + pmodel.startup_per_worker * workers as f64);
        }

        let samples = self.replay_samples(profile);
        let mut consumed = ConsumedTotals::default();

        for sample in &samples {
            let mut durations = [0.0f64; 4];
            if self.plan.emulate_compute && sample.compute.cycles > 0 {
                let directed = sample.compute.cycles;
                let actual = kprofile.consumed_cycles(directed);
                let serial = machine.compute_time(actual, class);
                let t = if workers > 1 {
                    let contention =
                        pmodel.contention * (workers as f64 - 1.0) / machine.cpu.ncores as f64;
                    (serial / workers as f64) * (1.0 + contention)
                } else {
                    serial
                };
                durations[0] = t;
                consumed.directed_cycles += directed;
                consumed.cycles += actual;
                consumed.instructions += (actual as f64 * kprofile.ipc) as u64;
            }
            if self.plan.emulate_storage {
                let rd = sample.storage.bytes_read;
                let wr = sample.storage.bytes_written;
                durations[1] = machine.io_time(rd, self.plan.io_read_block, IoOp::Read, fs)
                    + machine.io_time(wr, self.plan.io_write_block, IoOp::Write, fs);
                consumed.bytes_read += rd;
                consumed.bytes_written += wr;
            }
            if self.plan.emulate_memory {
                let bytes = sample.memory.allocated + sample.memory.freed;
                durations[2] = machine.mem_time(bytes);
                consumed.mem_allocated += sample.memory.allocated;
                consumed.mem_freed += sample.memory.freed;
            }
            if self.plan.emulate_network {
                let bytes = sample.network.bytes_sent + sample.network.bytes_recv;
                durations[3] = machine.net_time(bytes);
                consumed.net_sent += sample.network.bytes_sent;
                consumed.net_recv += sample.network.bytes_recv;
            }
            // Concurrent atoms: the sample ends when the last one does.
            let sample_time = durations.iter().cloned().fold(0.0, f64::max);
            clock.advance(sample_time);
        }

        EmulationReport {
            tx: clock.now(),
            samples: samples.len(),
            consumed,
            backend: format!("sim:{}", machine.name),
        }
    }
}

impl Default for Emulator {
    fn default() -> Self {
        Emulator::new(EmulationPlan::default())
    }
}

/// Consume a cycle budget with the configured parallelism.
fn run_cycles(
    kernel: &dyn ComputeKernel,
    kernel_name: &str,
    cycles: u64,
    threads: u32,
    mode: ParallelMode,
    worker: Option<&std::path::Path>,
) -> u64 {
    if threads > 1 && mode == ParallelMode::Mpi {
        if let Some(worker) = worker {
            if let Ok(consumed) =
                run_cycles_processes(worker, kernel_name, kernel.unit_cycles(), cycles, threads)
            {
                return consumed;
            }
            // Worker unusable: degrade to thread parallelism (the
            // resource *volume* is what matters, §E.4).
        }
    }
    run_cycles_threads(kernel, cycles, threads)
}

/// Split a cycle budget over spawned worker processes (the paper's
/// OpenMPI emulation: "duplicated resource usage in the case of
/// multi-processing" — each worker is a full process).
fn run_cycles_processes(
    worker: &std::path::Path,
    kernel_name: &str,
    unit_cycles: u64,
    cycles: u64,
    processes: u32,
) -> std::io::Result<u64> {
    let unit = unit_cycles.max(1);
    let units = cycles.div_ceil(unit);
    let per = units / processes as u64;
    let extra = units % processes as u64;
    let mut children = Vec::new();
    for rank in 0..processes as u64 {
        let share = per + u64::from(rank < extra);
        if share == 0 {
            continue;
        }
        let child = std::process::Command::new(worker)
            .arg("worker")
            .arg("--kernel")
            .arg(kernel_name)
            .arg("--cycles")
            .arg((share * unit).to_string())
            .env("SYNAPSE_RANK", rank.to_string())
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .spawn()?;
        children.push(child);
    }
    if children.is_empty() {
        return Ok(0);
    }
    for mut child in children {
        let status = child.wait()?;
        if !status.success() {
            return Err(std::io::Error::other(format!(
                "worker exited with {status}"
            )));
        }
    }
    Ok(units * unit)
}

/// Thread-based budget splitting (OpenMP analogue).
fn run_cycles_threads(kernel: &dyn ComputeKernel, cycles: u64, threads: u32) -> u64 {
    if threads <= 1 {
        kernel.execute_cycles(cycles).consumed_cycles
    } else {
        // Split whole units across a thread scope (OpenMP analogue).
        let unit = kernel.unit_cycles().max(1);
        let units = cycles.div_ceil(unit);
        let per = units / threads as u64;
        let extra = units % threads as u64;
        std::thread::scope(|s| {
            for t in 0..threads as u64 {
                let share = per + u64::from(t < extra);
                if share > 0 {
                    s.spawn(move || std::hint::black_box(kernel.run_units(share)));
                }
            }
        });
        units * unit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synapse_model::{ProfileKey, SystemInfo, Tags};
    use synapse_sim::{comet, stampede, thinkie};

    fn profile_with(cycles_per_sample: u64, nsamples: usize) -> Profile {
        let mut p = Profile::new(
            ProfileKey::new("test", Tags::new()),
            SystemInfo::default(),
            1.0,
        );
        p.runtime = nsamples as f64;
        for i in 0..nsamples {
            let mut s = Sample::at(i as f64, 1.0);
            s.compute.cycles = cycles_per_sample;
            s.memory.allocated = 1 << 20;
            s.memory.freed = if i + 1 == nsamples {
                (nsamples as u64) << 20
            } else {
                0
            };
            s.storage.bytes_written = 256 << 10;
            s.storage.bytes_read = 64 << 10;
            p.push(s).unwrap();
        }
        p
    }

    #[test]
    fn real_emulation_consumes_all_demands() {
        let plan = EmulationPlan {
            kernel: KernelChoice::Spin,
            io_dir: std::env::temp_dir(),
            ..Default::default()
        };
        let profile = profile_with(20_000_000, 3);
        let report = Emulator::new(plan).emulate(&profile).unwrap();
        assert_eq!(report.samples, 3);
        assert_eq!(report.consumed.directed_cycles, 60_000_000);
        assert!(report.consumed.cycles >= report.consumed.directed_cycles);
        assert_eq!(report.consumed.bytes_written, 3 * (256 << 10));
        assert_eq!(report.consumed.bytes_read, 3 * (64 << 10));
        assert_eq!(report.consumed.mem_allocated, 3 << 20);
        assert_eq!(report.consumed.mem_freed, 3 << 20);
        assert!(report.tx > 0.0);
        assert_eq!(report.backend, "real");
    }

    #[test]
    fn disabled_atoms_do_nothing() {
        let plan = EmulationPlan {
            kernel: KernelChoice::Spin,
            emulate_storage: false,
            emulate_memory: false,
            ..Default::default()
        };
        let profile = profile_with(5_000_000, 2);
        let report = Emulator::new(plan).emulate(&profile).unwrap();
        assert_eq!(report.consumed.bytes_written, 0);
        assert_eq!(report.consumed.mem_allocated, 0);
        assert!(report.consumed.cycles > 0);
    }

    #[test]
    fn order_ablation_merges_samples() {
        let plan = EmulationPlan {
            kernel: KernelChoice::Spin,
            preserve_sample_order: false,
            ..Default::default()
        };
        let profile = profile_with(1_000_000, 5);
        let report = Emulator::new(plan).emulate(&profile).unwrap();
        assert_eq!(report.samples, 1);
        assert_eq!(report.consumed.directed_cycles, 5_000_000);
    }

    #[test]
    fn network_demand_drives_the_network_atom() {
        let mut profile = profile_with(0, 1);
        profile.samples[0].network.bytes_sent = 50_000;
        profile.samples[0].network.bytes_recv = 30_000;
        let report = Emulator::default().emulate(&profile).unwrap();
        assert_eq!(report.consumed.net_sent, 50_000);
        assert_eq!(report.consumed.net_recv, 30_000);
    }

    #[test]
    fn simulated_emulation_prices_against_machine() {
        let profile = profile_with(1_000_000_000, 4);
        let emu = Emulator::new(EmulationPlan {
            sim_startup_seconds: 1.0,
            ..Default::default()
        });
        let report = emu.simulate(&profile, &thinkie());
        assert_eq!(report.samples, 4);
        assert!(report.tx > 1.0, "startup accounted: {}", report.tx);
        assert!(report.consumed.cycles >= report.consumed.directed_cycles);
        assert!(report.consumed.instructions > 0);
        assert!(report.backend.contains("thinkie"));
    }

    #[test]
    fn faster_machine_simulates_faster() {
        let profile = profile_with(5_000_000_000, 4);
        let emu = Emulator::default();
        let slow = emu.simulate(&profile, &thinkie());
        let fast = emu.simulate(&profile, &stampede());
        assert!(fast.tx < slow.tx, "{} !< {}", fast.tx, slow.tx);
    }

    #[test]
    fn c_kernel_has_lower_overshoot_than_asm_in_sim() {
        let profile = profile_with(10_000_000_000, 2);
        let asm = Emulator::new(EmulationPlan {
            kernel: KernelChoice::Asm,
            ..Default::default()
        })
        .simulate(&profile, &comet());
        let c = Emulator::new(EmulationPlan {
            kernel: KernelChoice::C,
            ..Default::default()
        })
        .simulate(&profile, &comet());
        let err = |r: &EmulationReport| {
            r.consumed.cycles as f64 / r.consumed.directed_cycles as f64 - 1.0
        };
        assert!(err(&c) < err(&asm), "C {} vs ASM {}", err(&c), err(&asm));
    }

    #[test]
    fn parallel_sim_emulation_scales() {
        let profile = profile_with(20_000_000_000, 3);
        let serial = Emulator::new(EmulationPlan {
            sim_startup_seconds: 0.0,
            ..Default::default()
        })
        .simulate(&profile, &stampede());
        let parallel = Emulator::new(EmulationPlan {
            threads: 8,
            sim_startup_seconds: 0.0,
            ..Default::default()
        })
        .simulate(&profile, &stampede());
        assert!(parallel.tx < serial.tx);
        assert!(parallel.tx > serial.tx / 8.0, "contention is real");
    }

    #[test]
    fn real_parallel_threads_cover_budget() {
        let plan = EmulationPlan {
            kernel: KernelChoice::Spin,
            threads: 4,
            ..Default::default()
        };
        let profile = profile_with(40_000_000, 1);
        let report = Emulator::new(plan).emulate(&profile).unwrap();
        assert!(report.consumed.cycles >= 40_000_000);
    }

    #[test]
    fn plan_from_profile_adopts_granularity_and_threads() {
        let mut p = profile_with(1_000, 2);
        p.samples[0].storage.write_ops = 4; // 256 KiB / 4 = 64 KiB blocks
        p.samples[1].storage.write_ops = 4;
        p.samples[0].storage.read_ops = 2; // 64 KiB / 2 = 32 KiB blocks
        p.samples[1].storage.read_ops = 2;
        p.samples[0].compute.threads = 6;
        let plan = EmulationPlan::from_profile(&p);
        assert_eq!(plan.io_write_block, (256 << 10) / 4);
        assert_eq!(plan.io_read_block, (64 << 10) / 2);
        assert_eq!(plan.threads, 6);
        // An I/O-free profile keeps the defaults.
        let empty = Profile::new(ProfileKey::default(), SystemInfo::default(), 1.0);
        let plan2 = EmulationPlan::from_profile(&empty);
        assert_eq!(plan2.io_write_block, 1 << 20);
        assert_eq!(plan2.threads, 1);
    }

    #[test]
    fn empty_profile_is_trivial() {
        let p = Profile::new(ProfileKey::default(), SystemInfo::default(), 1.0);
        let report = Emulator::default().emulate(&p).unwrap();
        assert_eq!(report.samples, 0);
        assert_eq!(report.consumed, ConsumedTotals::default());
        let sim = Emulator::default().simulate(&p, &thinkie());
        assert!((sim.tx - 1.0).abs() < 1e-9, "startup only");
    }
}
