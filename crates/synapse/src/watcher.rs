//! The watcher plugin framework.
//!
//! Mirrors the paper's plugin structure (§4.1):
//!
//! ```python
//! class WatcherClass(WatcherBase):
//!     def pre_process (self, config): ...
//!     def sample      (self): ...
//!     def post_process(self): ...
//!     def finalize    (self): ...
//! ```
//!
//! Each watcher runs in its own thread, sampling at the configured
//! rate until terminated; its per-interval observations form a partial
//! sample series (only the fields that watcher owns are set). Series
//! from different watchers are *not* synchronized — "the timestamps of
//! the different watchers ... can drift relative to each other over
//! time. We found this preferable to an increased profiling overhead
//! due to synchronization" — and are combined index-wise during
//! post-processing.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use synapse_model::Sample;

use crate::error::SynapseError;
use crate::schedule::SampleSchedule;

/// One watcher's observation for one interval: a [`Sample`] with only
/// the fields that watcher owns populated.
pub type PartialSample = Sample;

/// A watcher plugin observing one resource type of one process.
pub trait Watcher: Send {
    /// Plugin name (diagnostics, error attribution).
    fn name(&self) -> &'static str;

    /// Set up the profiling environment (attach counters, read
    /// baselines). Called once on the watcher thread before sampling.
    fn pre_process(&mut self) -> Result<(), SynapseError> {
        Ok(())
    }

    /// Collect one observation covering `[t, t+dt)` seconds since
    /// profiling start. Watchers difference cumulative counters
    /// internally. A vanished process should produce a final
    /// observation, not an error.
    fn sample(&mut self, t: f64, dt: f64) -> Result<PartialSample, SynapseError>;

    /// Tear down the profiling environment. Called once after the
    /// sampling loop ends.
    fn post_process(&mut self) -> Result<(), SynapseError> {
        Ok(())
    }

    /// Post-process the collected series in place (e.g. the memory
    /// watcher derives allocation deltas from RSS gauges here). This
    /// is the paper's `finalize`, where plugins may refine raw data.
    fn finalize(&mut self, series: &mut Vec<PartialSample>) -> Result<(), SynapseError> {
        let _ = series;
        Ok(())
    }
}

/// Handle to a running watcher thread.
pub struct WatcherHandle {
    name: &'static str,
    terminate: Arc<AtomicBool>,
    ready: std::sync::mpsc::Receiver<()>,
    thread: JoinHandle<Result<Vec<PartialSample>, SynapseError>>,
}

impl WatcherHandle {
    /// Signal the sampling loop to stop after its next (final) sample.
    pub fn terminate(&self) {
        self.terminate.store(true, Ordering::SeqCst);
    }

    /// Block until the watcher finished `pre_process` (counters
    /// attached, baselines read). The profiler waits for this before
    /// letting the observed work proceed, so short bursts right after
    /// startup are not missed.
    pub fn wait_ready(&self) {
        // A dropped sender (failed pre_process) also unblocks; the
        // error then surfaces through join().
        let _ = self.ready.recv_timeout(std::time::Duration::from_secs(10));
    }

    /// Join the thread and retrieve the watcher's series.
    pub fn join(self) -> Result<Vec<PartialSample>, SynapseError> {
        match self.thread.join() {
            Ok(result) => result,
            Err(_) => Err(SynapseError::Watcher {
                name: self.name,
                reason: "watcher thread panicked".into(),
            }),
        }
    }
}

/// Spawn a watcher on its own thread, sampling per `schedule` until
/// terminated. Implements the paper's run loop:
///
/// ```python
/// self.pre_process(self._config)
/// while not self._terminate.is_set():
///     now = timestamp()
///     self.sample(now)
///     time.sleep(1.0 / self._sample_rate)
/// self.post_process()
/// ```
///
/// with one extension: after termination is signalled, a final sample
/// is taken so the tail of the execution lands in a (full) closing
/// period — "profiling will only terminate when full sample periods
/// have passed" (§4.5).
pub fn spawn_watcher(
    mut watcher: Box<dyn Watcher>,
    schedule: SampleSchedule,
) -> Result<WatcherHandle, SynapseError> {
    let name = watcher.name();
    let terminate = Arc::new(AtomicBool::new(false));
    let flag = terminate.clone();
    let (ready_tx, ready) = std::sync::mpsc::channel();
    let thread = std::thread::Builder::new()
        .name(format!("synapse-watcher-{name}"))
        .spawn(move || {
            watcher.pre_process()?;
            let _ = ready_tx.send(());
            let start = Instant::now();
            let mut series: Vec<PartialSample> = Vec::new();
            let mut index: u64 = 0;
            loop {
                let stop = flag.load(Ordering::SeqCst);
                let sample = watcher.sample(schedule.time_of(index), schedule.dt_of(index))?;
                series.push(sample);
                index += 1;
                if stop {
                    break;
                }
                // Sleep toward the next schedule point, bounded so
                // termination at slow rates stays responsive.
                let next = Duration::from_secs_f64(schedule.time_of(index));
                loop {
                    let elapsed = start.elapsed();
                    if elapsed >= next || flag.load(Ordering::SeqCst) {
                        break;
                    }
                    std::thread::sleep((next - elapsed).min(Duration::from_millis(20)));
                }
            }
            watcher.post_process()?;
            watcher.finalize(&mut series)?;
            Ok(series)
        })
        .map_err(|e| SynapseError::Watcher {
            name,
            reason: format!("spawn failed: {e}"),
        })?;
    Ok(WatcherHandle {
        name,
        terminate,
        ready,
        thread,
    })
}

/// Combine the per-watcher series into one sample series, index-wise:
/// sample `i` of the combined profile merges sample `i` of every
/// watcher (the paper combines "the individual time series ... during
/// postprocessing"). Series may have different lengths (unsynchronized
/// threads); the combined length is the longest.
pub fn combine_series(series: Vec<Vec<PartialSample>>, schedule: &SampleSchedule) -> Vec<Sample> {
    let len = series.iter().map(Vec::len).max().unwrap_or(0);
    let mut combined = Vec::with_capacity(len);
    for i in 0..len {
        let mut merged = Sample::at(schedule.time_of(i as u64), schedule.dt_of(i as u64));
        for s in &series {
            if let Some(part) = s.get(i) {
                let mut aligned = *part;
                // Use the canonical grid timing; watcher-local
                // timestamps may drift.
                aligned.t = merged.t;
                aligned.dt = merged.dt;
                merged = merged.absorb(&aligned);
            }
        }
        combined.push(merged);
    }
    combined
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A watcher producing a fixed quantity per interval.
    struct TickWatcher {
        cycles_per_tick: u64,
        pre_called: bool,
        post_called: Arc<AtomicBool>,
    }

    impl Watcher for TickWatcher {
        fn name(&self) -> &'static str {
            "tick"
        }
        fn pre_process(&mut self) -> Result<(), SynapseError> {
            self.pre_called = true;
            Ok(())
        }
        fn sample(&mut self, t: f64, dt: f64) -> Result<PartialSample, SynapseError> {
            assert!(self.pre_called, "pre_process must run before sampling");
            let mut s = Sample::at(t, dt);
            s.compute.cycles = self.cycles_per_tick;
            Ok(s)
        }
        fn post_process(&mut self) -> Result<(), SynapseError> {
            self.post_called.store(true, Ordering::SeqCst);
            Ok(())
        }
    }

    #[test]
    fn watcher_thread_samples_until_terminated() {
        let post = Arc::new(AtomicBool::new(false));
        let handle = spawn_watcher(
            Box::new(TickWatcher {
                cycles_per_tick: 10,
                pre_called: false,
                post_called: post.clone(),
            }),
            SampleSchedule::Constant { hz: 50.0 },
        )
        .unwrap();
        std::thread::sleep(Duration::from_millis(110));
        handle.terminate();
        let series = handle.join().unwrap();
        // ~5-6 samples plus the final one; generous bounds for CI.
        assert!(series.len() >= 3, "got {}", series.len());
        assert!(series.len() <= 10, "got {}", series.len());
        assert!(post.load(Ordering::SeqCst), "post_process ran");
        // Timestamps on the canonical grid.
        for (i, s) in series.iter().enumerate() {
            assert!((s.t - i as f64 * 0.02).abs() < 1e-9);
        }
    }

    #[test]
    fn termination_yields_final_sample_immediately() {
        let handle = spawn_watcher(
            Box::new(TickWatcher {
                cycles_per_tick: 1,
                pre_called: false,
                post_called: Arc::new(AtomicBool::new(false)),
            }),
            SampleSchedule::Constant { hz: 1.0 / 3600.0 }, // absurdly slow
        )
        .unwrap();
        std::thread::sleep(Duration::from_millis(30));
        handle.terminate();
        let t = Instant::now();
        let series = handle.join().unwrap();
        assert!(
            t.elapsed() < Duration::from_secs(2),
            "join must not wait a full period"
        );
        // One startup sample + one final sample.
        assert_eq!(series.len(), 2);
    }

    struct FailingWatcher;
    impl Watcher for FailingWatcher {
        fn name(&self) -> &'static str {
            "failing"
        }
        fn sample(&mut self, _t: f64, _dt: f64) -> Result<PartialSample, SynapseError> {
            Err(SynapseError::Watcher {
                name: "failing",
                reason: "boom".into(),
            })
        }
    }

    #[test]
    fn watcher_errors_propagate_through_join() {
        let handle = spawn_watcher(
            Box::new(FailingWatcher),
            SampleSchedule::Constant { hz: 10.0 },
        )
        .unwrap();
        std::thread::sleep(Duration::from_millis(20));
        handle.terminate();
        assert!(handle.join().is_err());
    }

    #[test]
    fn combine_merges_indexwise() {
        let mut cpu = Vec::new();
        let mut io = Vec::new();
        for i in 0..3 {
            let mut c = Sample::at(i as f64 * 0.1, 0.1);
            c.compute.cycles = 100;
            cpu.push(c);
            let mut d = Sample::at(i as f64 * 0.1 + 0.003, 0.1); // drifted
            d.storage.bytes_written = 50;
            io.push(d);
        }
        io.pop(); // unequal lengths
        let combined = combine_series(vec![cpu, io], &SampleSchedule::Constant { hz: 10.0 });
        assert_eq!(combined.len(), 3);
        assert_eq!(combined[0].compute.cycles, 100);
        assert_eq!(combined[0].storage.bytes_written, 50);
        assert_eq!(combined[2].compute.cycles, 100);
        assert_eq!(combined[2].storage.bytes_written, 0); // missing tail
                                                          // Canonical grid, drift discarded.
        assert!((combined[1].t - 0.1).abs() < 1e-12);
    }

    #[test]
    fn combine_empty_input() {
        let sched = SampleSchedule::Constant { hz: 10.0 };
        assert!(combine_series(Vec::new(), &sched).is_empty());
        assert!(combine_series(vec![Vec::new(), Vec::new()], &sched).is_empty());
    }
}
