//! Artificial background load ("similar to the Linux utility
//! `stress`", §4.3): Synapse can stress CPU, memory and disk while
//! emulating, to reproduce application behaviour on busy systems.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use synapse_perf::calibration::spin_cycles;

/// Configuration of the artificial load.
#[derive(Debug, Clone, Default)]
pub struct StressConfig {
    /// Number of busy-spinning CPU worker threads.
    pub cpu_workers: u32,
    /// Bytes of memory to hold (touched) for the duration.
    pub memory_bytes: u64,
    /// Directory for a continuous write loop; `None` disables disk
    /// stress.
    pub io_dir: Option<PathBuf>,
}

/// A running artificial load; dropping (or calling
/// [`StressLoad::stop`]) releases everything.
pub struct StressLoad {
    stop: Arc<AtomicBool>,
    workers: Vec<JoinHandle<()>>,
    _memory: Vec<u8>,
}

impl StressLoad {
    /// Start the configured load.
    pub fn start(config: StressConfig) -> std::io::Result<StressLoad> {
        let stop = Arc::new(AtomicBool::new(false));
        let mut workers = Vec::new();
        for i in 0..config.cpu_workers {
            let flag = stop.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("synapse-stress-cpu-{i}"))
                    .spawn(move || {
                        while !flag.load(Ordering::Relaxed) {
                            std::hint::black_box(spin_cycles(5_000_000));
                        }
                    })?,
            );
        }
        if let Some(dir) = &config.io_dir {
            std::fs::create_dir_all(dir)?;
            let path = dir.join(format!("synapse-stress-{}.dat", std::process::id()));
            let flag = stop.clone();
            workers.push(
                std::thread::Builder::new()
                    .name("synapse-stress-io".into())
                    .spawn(move || {
                        let buf = vec![0xeeu8; 1 << 20];
                        while !flag.load(Ordering::Relaxed) {
                            let _ = std::fs::write(&path, &buf);
                        }
                        let _ = std::fs::remove_file(&path);
                    })?,
            );
        }
        let mut memory = vec![0u8; config.memory_bytes as usize];
        for i in (0..memory.len()).step_by(4096) {
            memory[i] = 1;
        }
        Ok(StressLoad {
            stop,
            workers,
            _memory: memory,
        })
    }

    /// Number of live stress workers.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Stop all workers and release held memory.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for StressLoad {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    #[test]
    fn cpu_stress_starts_and_stops() {
        let load = StressLoad::start(StressConfig {
            cpu_workers: 2,
            ..Default::default()
        })
        .unwrap();
        assert_eq!(load.worker_count(), 2);
        std::thread::sleep(Duration::from_millis(50));
        let t = Instant::now();
        load.stop();
        assert!(t.elapsed() < Duration::from_secs(2), "stop must be prompt");
    }

    #[test]
    fn memory_stress_holds_bytes() {
        let load = StressLoad::start(StressConfig {
            memory_bytes: 4 << 20,
            ..Default::default()
        })
        .unwrap();
        assert_eq!(load._memory.len(), 4 << 20);
        load.stop();
    }

    #[test]
    fn io_stress_writes_and_cleans_up() {
        let dir = std::env::temp_dir().join("synapse-stress-test");
        let load = StressLoad::start(StressConfig {
            io_dir: Some(dir.clone()),
            ..Default::default()
        })
        .unwrap();
        std::thread::sleep(Duration::from_millis(80));
        load.stop();
        // The stress file is removed on stop.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .map(|d| d.filter_map(|e| e.ok()).collect())
            .unwrap_or_default();
        assert!(leftovers.is_empty(), "stress files cleaned: {leftovers:?}");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn zero_config_is_a_noop_load() {
        let load = StressLoad::start(StressConfig::default()).unwrap();
        assert_eq!(load.worker_count(), 0);
        load.stop();
    }

    #[test]
    fn stress_slows_down_co_running_work() {
        // The point of stress: co-running work takes longer. Use a
        // worker count matching the host's cores to guarantee
        // contention even on many-core machines.
        let ncores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        let work = || {
            let t = Instant::now();
            std::hint::black_box(spin_cycles(60_000_000));
            t.elapsed().as_secs_f64()
        };
        let baseline = (0..3).map(|_| work()).fold(f64::INFINITY, f64::min);
        let load = StressLoad::start(StressConfig {
            cpu_workers: (ncores as u32) * 2,
            ..Default::default()
        })
        .unwrap();
        std::thread::sleep(Duration::from_millis(20));
        let stressed = (0..3).map(|_| work()).fold(f64::INFINITY, f64::min);
        load.stop();
        assert!(
            stressed > baseline * 1.2,
            "stressed {stressed} vs baseline {baseline}"
        );
    }
}
