//! Profiler configuration.

use crate::error::SynapseError;

/// The paper's sampling ceiling: "Synapse can at most gather one
/// sample every 100 ms (i.e., 10 samples per second), which coincides
/// with the sampling limit of perf stat" (§4.1).
pub const MAX_SAMPLE_RATE_HZ: f64 = 10.0;

/// Configuration of a profiling run.
#[derive(Debug, Clone)]
pub struct ProfilerConfig {
    /// Sampling rate in Hz, uniform over all watchers. Clamped to the
    /// 10 Hz ceiling; "there is no lower bound to the sampling rate".
    /// Under the adaptive scheme this is the *steady* rate.
    pub sample_rate_hz: f64,
    /// Adaptive sampling (the paper's §6 proposal): sample at 10 Hz
    /// for this many seconds to capture the application startup, then
    /// drop to `sample_rate_hz`. `None` keeps the rate constant.
    pub adaptive_window_secs: Option<f64>,
    /// Whether to attach hardware counters (falls back to the
    /// calibrated model automatically when the kernel denies perf).
    pub use_hardware_counters: bool,
    /// Whether to sample `/proc/<pid>/io` (needs same-user access).
    pub watch_io: bool,
    /// Whether to sample `/proc/<pid>/status` memory gauges.
    pub watch_memory: bool,
}

impl Default for ProfilerConfig {
    fn default() -> Self {
        ProfilerConfig {
            sample_rate_hz: 10.0,
            adaptive_window_secs: None,
            use_hardware_counters: true,
            watch_io: true,
            watch_memory: true,
        }
    }
}

impl ProfilerConfig {
    /// A config with an explicit sampling rate.
    pub fn with_rate(rate_hz: f64) -> Self {
        ProfilerConfig {
            sample_rate_hz: rate_hz,
            ..Default::default()
        }
    }

    /// A config with the paper's proposed adaptive scheme: 10 Hz for
    /// `window_secs`, then `steady_hz`.
    pub fn adaptive(window_secs: f64, steady_hz: f64) -> Self {
        ProfilerConfig {
            sample_rate_hz: steady_hz,
            adaptive_window_secs: Some(window_secs),
            ..Default::default()
        }
    }

    /// Build the sample schedule this configuration describes.
    pub fn schedule(&self) -> Result<crate::schedule::SampleSchedule, SynapseError> {
        match self.adaptive_window_secs {
            None => crate::schedule::SampleSchedule::constant(self.sample_rate_hz),
            Some(window) => crate::schedule::SampleSchedule::adaptive(window, self.sample_rate_hz),
        }
    }

    /// The effective (clamped, validated) sampling rate.
    pub fn effective_rate(&self) -> Result<f64, SynapseError> {
        if !self.sample_rate_hz.is_finite() || self.sample_rate_hz <= 0.0 {
            return Err(SynapseError::Config(format!(
                "sample rate {} must be positive",
                self.sample_rate_hz
            )));
        }
        Ok(self.sample_rate_hz.min(MAX_SAMPLE_RATE_HZ))
    }

    /// Sampling interval in seconds.
    pub fn interval(&self) -> Result<std::time::Duration, SynapseError> {
        Ok(std::time::Duration::from_secs_f64(
            1.0 / self.effective_rate()?,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_rate_is_papers_maximum() {
        let c = ProfilerConfig::default();
        assert_eq!(c.effective_rate().unwrap(), 10.0);
        assert_eq!(c.interval().unwrap(), std::time::Duration::from_millis(100));
    }

    #[test]
    fn rates_above_ceiling_clamp() {
        let c = ProfilerConfig::with_rate(100.0);
        assert_eq!(c.effective_rate().unwrap(), MAX_SAMPLE_RATE_HZ);
    }

    #[test]
    fn slow_rates_allowed_without_lower_bound() {
        let c = ProfilerConfig::with_rate(0.01);
        assert_eq!(c.effective_rate().unwrap(), 0.01);
        assert_eq!(c.interval().unwrap(), std::time::Duration::from_secs(100));
    }

    #[test]
    fn invalid_rates_rejected() {
        assert!(ProfilerConfig::with_rate(0.0).effective_rate().is_err());
        assert!(ProfilerConfig::with_rate(-1.0).effective_rate().is_err());
        assert!(ProfilerConfig::with_rate(f64::NAN)
            .effective_rate()
            .is_err());
    }
}
