//! The paper's top-level API:
//!
//! ```python
//! radical.synapse.profile(command, tags=None)
//! radical.synapse.emulate(command, tags=None)
//! ```
//!
//! `profile` runs and observes the command, storing the profile under
//! the `(command, tags)` index; `emulate` looks a matching profile up
//! and replays it through the emulation atoms.

use synapse_model::Tags;
use synapse_store::ProfileStore;

use crate::config::ProfilerConfig;
use crate::emulator::{EmulationPlan, EmulationReport, Emulator};
use crate::error::SynapseError;
use crate::profiler::{key_for, split_command, ProfileOutcome, Profiler};

/// Profile a shell command and store the result.
///
/// The command is spawned with silenced stdio, watched at the
/// configured sampling rate, and the resulting profile is saved under
/// the `(command, tags)` key before being returned.
pub fn profile(
    command: &str,
    tags: Option<Tags>,
    store: &dyn ProfileStore,
    config: &ProfilerConfig,
) -> Result<ProfileOutcome, SynapseError> {
    let (program, args) = split_command(command)?;
    let key = key_for(command, tags);
    let profiler = Profiler::new(config.clone());
    let arg_refs: Vec<&str> = args.iter().map(String::as_str).collect();
    let outcome = profiler.profile_command(&program, &arg_refs, key)?;
    store.save(&outcome.profile)?;
    Ok(outcome)
}

/// Emulate a previously profiled command.
///
/// Looks up the most representative stored profile for the
/// `(command, tags)` key (mean-runtime representative across repeated
/// profilings, §4's "basic statistics analysis") and replays it on the
/// real backend with the given plan.
pub fn emulate(
    command: &str,
    tags: Option<Tags>,
    store: &dyn ProfileStore,
    plan: &EmulationPlan,
) -> Result<EmulationReport, SynapseError> {
    let key = key_for(command, tags);
    let profile = store
        .load_representative(&key)
        .map_err(|_| SynapseError::ProfileNotFound(key.to_string()))?;
    Emulator::new(plan.clone()).emulate(&profile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emulator::KernelChoice;
    use synapse_store::FileStore;

    fn store(tag: &str) -> FileStore {
        let dir = std::env::temp_dir().join(format!("synapse-api-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        FileStore::open(dir).unwrap()
    }

    #[test]
    fn profile_then_emulate_roundtrip() {
        let store = store("roundtrip");
        let config = ProfilerConfig::default();
        let outcome = profile("sleep 0.15", None, &store, &config).unwrap();
        assert!(outcome.profile.runtime >= 0.14);

        let plan = EmulationPlan {
            kernel: KernelChoice::Spin,
            ..Default::default()
        };
        let report = emulate("sleep 0.15", None, &store, &plan).unwrap();
        assert!(report.samples >= 1);
        // A sleep consumes almost nothing; the emulation replays that
        // near-nothing quickly.
        assert!(report.tx < outcome.profile.runtime + 2.0);
        std::fs::remove_dir_all(store.root()).unwrap();
    }

    #[test]
    fn emulate_without_profile_fails_cleanly() {
        let store = store("missing");
        let err = emulate("never profiled", None, &store, &EmulationPlan::default());
        assert!(matches!(err, Err(SynapseError::ProfileNotFound(_))));
        std::fs::remove_dir_all(store.root()).unwrap();
    }

    #[test]
    fn tags_distinguish_profiles() {
        let store = store("tags");
        let config = ProfilerConfig::default();
        profile("sleep 0.1", Some(Tags::parse("case=a")), &store, &config).unwrap();
        // Emulating with a different tag must fail (no match).
        let err = emulate(
            "sleep 0.1",
            Some(Tags::parse("case=b")),
            &store,
            &EmulationPlan::default(),
        );
        assert!(matches!(err, Err(SynapseError::ProfileNotFound(_))));
        // The right tag matches.
        let ok = emulate(
            "sleep 0.1",
            Some(Tags::parse("case=a")),
            &store,
            &EmulationPlan::default(),
        );
        assert!(ok.is_ok());
        std::fs::remove_dir_all(store.root()).unwrap();
    }

    #[test]
    fn empty_command_rejected() {
        let store = store("empty");
        let err = profile("", None, &store, &ProfilerConfig::default());
        assert!(matches!(err, Err(SynapseError::Config(_))));
        std::fs::remove_dir_all(store.root()).unwrap();
    }
}
