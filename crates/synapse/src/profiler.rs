//! The profiling engine: spawn, watch, combine.
//!
//! Synapse "spawns the application process \[and\] communicates the
//! application process' PID to the watcher threads, which monitor the
//! application process" (§4.1). The process is wrapped in a `time -v`
//! analogue so the measured `Tx` starts at spawn, correcting the small
//! offset before the first watcher sample.

use std::process::Command;

use synapse_model::{Profile, ProfileKey, Tags};
use synapse_perf::{CalibratedProvider, CounterProvider};
use synapse_proc::{host_system_info, TimedChild, TimedResult};

use crate::config::ProfilerConfig;
use crate::error::SynapseError;
use crate::watcher::{combine_series, spawn_watcher, WatcherHandle};
use crate::watchers::{CpuWatcher, IoWatcher, MemWatcher};

/// Everything a profiling run produces.
#[derive(Debug, Clone)]
pub struct ProfileOutcome {
    /// The combined profile (stored by the caller or by
    /// [`crate::api::profile`]).
    pub profile: Profile,
    /// Wall time, exit code and rusage of the application.
    pub timed: TimedResult,
}

/// The profiler.
pub struct Profiler {
    config: ProfilerConfig,
}

impl Profiler {
    /// A profiler with the given configuration.
    pub fn new(config: ProfilerConfig) -> Self {
        Profiler { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &ProfilerConfig {
        &self.config
    }

    /// Profile a command line (program + args) under a profile key.
    ///
    /// This is the black-box path: the application needs no changes;
    /// stdout/stderr are silenced so profiling output stays clean.
    pub fn profile_command(
        &self,
        program: &str,
        args: &[&str],
        key: ProfileKey,
    ) -> Result<ProfileOutcome, SynapseError> {
        let mut cmd = Command::new(program);
        cmd.args(args)
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null());
        self.profile_spawned(cmd, key)
    }

    /// Profile a prepared [`Command`] (caller controls stdio/env).
    pub fn profile_spawned(
        &self,
        cmd: Command,
        key: ProfileKey,
    ) -> Result<ProfileOutcome, SynapseError> {
        let schedule = self.config.schedule()?;

        let child = TimedChild::spawn_command(cmd)?;
        let pid = child.pid();
        let handles = self.spawn_watchers(pid, schedule)?;

        // Wait for exit WITHOUT reaping: the child stays a zombie so
        // the watchers' final samples can still read its cumulative
        // /proc counters (otherwise activity in the last partial
        // period would be lost).
        let wall = child.wait_without_reaping()?;

        // Stop sampling; each watcher takes one final sample so the
        // tail of the run is captured in a closing full period.
        for h in &handles {
            h.terminate();
        }
        let mut all_series = Vec::with_capacity(handles.len());
        for h in handles {
            all_series.push(h.join()?);
        }

        // Now reap, collecting exit status and rusage.
        let mut timed = child.wait()?;
        timed.wall_time = wall;

        let samples = combine_series(all_series, &schedule);
        let mut profile = Profile::new(key, host_system_info()?, schedule.steady_hz());
        profile.runtime = timed.wall_time.as_secs_f64();
        for s in samples {
            profile.push(s)?;
        }
        // Fold the rusage peak into the profile: the paper corrects
        // startup effects via `time -v`, whose max-RSS covers the
        // window before the first watcher sample.
        if let Some(first) = profile.samples.first_mut() {
            first.memory.peak = first.memory.peak.max(timed.usage.max_rss);
        }
        Ok(ProfileOutcome { profile, timed })
    }

    /// Profile a Rust closure running in-process (the paper's "command
    /// is either a shell command line or a Python callable"). The
    /// watchers observe the *current* process, so the closure should
    /// dominate its activity.
    pub fn profile_fn<T>(
        &self,
        key: ProfileKey,
        f: impl FnOnce() -> T,
    ) -> Result<(ProfileOutcome, T), SynapseError> {
        let schedule = self.config.schedule()?;
        let pid = std::process::id() as i32;
        // Hardware counters attach to a *task*: observing the process
        // would count the (idle) main thread, not the calling thread
        // the closure runs on. Attach the CPU watcher to this thread's
        // tid; the /proc watchers observe the whole process.
        // SAFETY: gettid has no preconditions.
        let tid = unsafe { libc::syscall(libc::SYS_gettid) } as i32;
        let handles = self.spawn_watchers_split(tid, pid, schedule)?;
        // The closure must not start before the counters are attached.
        for h in &handles {
            h.wait_ready();
        }

        let start = std::time::Instant::now();
        let value = f();
        let wall = start.elapsed();

        for h in &handles {
            h.terminate();
        }
        let mut all_series = Vec::with_capacity(handles.len());
        for h in handles {
            all_series.push(h.join()?);
        }
        let samples = combine_series(all_series, &schedule);
        let mut profile = Profile::new(key, host_system_info()?, schedule.steady_hz());
        profile.runtime = wall.as_secs_f64();
        for s in samples {
            profile.push(s)?;
        }
        let timed = TimedResult {
            wall_time: wall,
            exit_code: 0,
            usage: synapse_proc::rusage_self()?,
        };
        Ok((ProfileOutcome { profile, timed }, value))
    }

    fn spawn_watchers(
        &self,
        pid: i32,
        schedule: crate::schedule::SampleSchedule,
    ) -> Result<Vec<WatcherHandle>, SynapseError> {
        self.spawn_watchers_split(pid, pid, schedule)
    }

    /// Spawn the watcher set with distinct targets for the counter
    /// watcher (`cpu_pid`, may be a thread id) and the `/proc`
    /// watchers (`proc_pid`, a process id).
    fn spawn_watchers_split(
        &self,
        cpu_pid: i32,
        proc_pid: i32,
        schedule: crate::schedule::SampleSchedule,
    ) -> Result<Vec<WatcherHandle>, SynapseError> {
        let mut handles = Vec::new();
        let provider: Box<dyn CounterProvider> = if self.config.use_hardware_counters {
            synapse_perf::default_provider()
        } else {
            Box::new(CalibratedProvider::new())
        };
        handles.push(spawn_watcher(
            Box::new(CpuWatcher::new(cpu_pid, provider)),
            schedule,
        )?);
        if self.config.watch_memory {
            handles.push(spawn_watcher(
                Box::new(MemWatcher::new(proc_pid)),
                schedule,
            )?);
        }
        if self.config.watch_io {
            handles.push(spawn_watcher(Box::new(IoWatcher::new(proc_pid)), schedule)?);
        }
        Ok(handles)
    }
}

impl Default for Profiler {
    fn default() -> Self {
        Profiler::new(ProfilerConfig::default())
    }
}

/// Build the canonical [`ProfileKey`] for a shell-style command line
/// plus optional tags (the `(command, tags)` database index of §4).
pub fn key_for(command: &str, tags: Option<Tags>) -> ProfileKey {
    ProfileKey::new(command.trim(), tags.unwrap_or_default())
}

/// Split a shell-style command line into program and arguments
/// (whitespace splitting; quoting is the caller's job — the paper's
/// API takes the command string the same way).
pub fn split_command(command: &str) -> Result<(String, Vec<String>), SynapseError> {
    let mut parts = command.split_whitespace().map(String::from);
    let program = parts
        .next()
        .ok_or_else(|| SynapseError::Config("empty command".into()))?;
    Ok((program, parts.collect()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_config() -> ProfilerConfig {
        ProfilerConfig {
            sample_rate_hz: 10.0,
            // The calibrated provider with lazy calibration measures
            // frequency once per process; fine in tests.
            ..Default::default()
        }
    }

    #[test]
    fn profiles_a_short_sleep() {
        let p = Profiler::new(fast_config());
        let key = key_for("sleep 0.25", None);
        let outcome = p
            .profile_command("/bin/sleep", &["0.25"], key.clone())
            .unwrap();
        assert_eq!(outcome.timed.exit_code, 0);
        let profile = &outcome.profile;
        assert_eq!(profile.key, key);
        assert!(profile.runtime >= 0.24, "runtime {}", profile.runtime);
        assert!(profile.runtime < 5.0);
        assert!(profile.len() >= 2, "got {} samples", profile.len());
        assert!(profile.validate().is_ok());
        // A sleeping process burns almost nothing.
        let d = profile.derived();
        if let Some(util) = d.utilization {
            assert!(util < 0.5, "sleep must not look busy: {util}");
        }
    }

    #[test]
    fn profiles_a_cpu_burner_and_sees_cycles() {
        let p = Profiler::new(fast_config());
        let key = key_for("sh busy", None);
        let outcome = p
            .profile_command(
                "/bin/sh",
                &["-c", "i=0; while [ $i -lt 300000 ]; do i=$((i+1)); done"],
                key,
            )
            .unwrap();
        let totals = outcome.profile.totals();
        assert!(
            totals.cycles > 10_000_000,
            "busy loop must show cycles, got {}",
            totals.cycles
        );
        assert!(outcome.timed.usage.cpu_time().as_secs_f64() > 0.0);
    }

    #[test]
    fn profile_fn_observes_in_process_work() {
        let p = Profiler::new(fast_config());
        let key = key_for("callable", None);
        let (outcome, value) = p
            .profile_fn(key, || {
                std::hint::black_box(synapse_perf::calibration::spin_cycles(300_000_000))
            })
            .unwrap();
        assert_ne!(value, 0);
        assert!(outcome.profile.runtime > 0.0);
        assert!(outcome.profile.totals().cycles > 0);
    }

    #[test]
    fn spawn_failure_reports_cleanly() {
        let p = Profiler::new(fast_config());
        let r = p.profile_command("/no/such/program", &[], key_for("x", None));
        assert!(r.is_err());
    }

    #[test]
    fn command_splitting() {
        let (prog, args) = split_command("gromacs mdrun -s topol").unwrap();
        assert_eq!(prog, "gromacs");
        assert_eq!(args, vec!["mdrun", "-s", "topol"]);
        assert!(split_command("   ").is_err());
    }

    #[test]
    fn key_for_trims_and_defaults() {
        let k = key_for("  sleep 1 ", None);
        assert_eq!(k.command, "sleep 1");
        assert!(k.tags.is_empty());
        let k2 = key_for("app", Some(Tags::parse("a=1")));
        assert_eq!(k2.tags.get("a"), Some("1"));
    }
}
