//! Property tests for the sharded store: routing totality/stability,
//! dirty-shard-only saves, and compaction idempotence.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;
use synapse_store::{shard_of, Document, ShardedDb, DEFAULT_DOC_LIMIT, SHARD_COUNT};

/// A scratch directory unique to this process *and* this test case, so
/// the 64 generated cases of a property never share state.
fn case_dir(tag: &str) -> PathBuf {
    static CASE: AtomicUsize = AtomicUsize::new(0);
    let n = CASE.fetch_add(1, Ordering::Relaxed);
    let d = std::env::temp_dir().join(format!(
        "synapse-sharded-props-{tag}-{}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn doc(key: &str, n: i64) -> Document {
    Document::new(key, &n).expect("small doc")
}

/// Distinct shards touched by a set of keys.
fn shards_of(keys: &[String]) -> Vec<u8> {
    let mut shards: Vec<u8> = keys.iter().map(|k| shard_of(k)).collect();
    shards.sort_unstable();
    shards.dedup();
    shards
}

proptest! {
    #[test]
    fn every_key_routes_to_exactly_one_stable_shard(key in "[ -~]{0,24}") {
        // Totality: u8 return type already bounds the shard id; the
        // mapping must also be a function (same key ⇒ same shard).
        let s = shard_of(&key);
        prop_assert!((s as usize) < SHARD_COUNT);
        prop_assert_eq!(shard_of(&key), s);
        prop_assert_eq!(shard_of(&key.clone()), s);
    }

    #[test]
    fn hex_keys_route_by_their_visible_prefix(key in "[0-9a-f]{16}") {
        let expect = u8::from_str_radix(&key[..2], 16).unwrap();
        prop_assert_eq!(shard_of(&key), expect);
    }

    #[test]
    fn random_doc_sets_roundtrip_through_save_and_open(
        keys in proptest::collection::vec("[0-9a-f]{16}", 1..40),
        workers in 0usize..9,
    ) {
        let dir = case_dir("roundtrip");
        let db = ShardedDb::open(&dir, DEFAULT_DOC_LIMIT, "props").unwrap();
        for (i, key) in keys.iter().enumerate() {
            db.upsert(doc(key, i as i64)).unwrap();
        }
        db.save().unwrap();
        let back = ShardedDb::open_with_workers(&dir, DEFAULT_DOC_LIMIT, "props", workers).unwrap();
        prop_assert_eq!(back.len(), db.len());
        for key in &keys {
            prop_assert_eq!(back.get(key), db.get(key));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn saves_touch_only_files_of_mutated_shards(
        initial in proptest::collection::vec("[0-9a-f]{16}", 1..60),
        extra in proptest::collection::vec("[0-9a-f]{16}", 1..8),
    ) {
        let dir = case_dir("dirty");
        let db = ShardedDb::open(&dir, DEFAULT_DOC_LIMIT, "props").unwrap();
        for key in &initial {
            db.upsert(doc(key, 0)).unwrap();
        }
        db.save().unwrap();
        prop_assert!(db.dirty_shards().is_empty());

        for key in &extra {
            db.upsert(doc(key, 1)).unwrap();
        }
        let mutated = shards_of(&extra);
        prop_assert_eq!(db.dirty_shards(), mutated.clone());
        let stats = db.save().unwrap();
        // One data file per mutated shard at most (files can also be
        // shared after compaction, never multiplied).
        prop_assert!(stats.data_files_written <= mutated.len());
        prop_assert!(stats.data_files_written >= 1);
        // An untouched re-save writes nothing at all.
        prop_assert_eq!(db.save().unwrap().data_files_written, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_is_idempotent_and_preserves_contents(
        keys in proptest::collection::vec("[0-9a-f]{16}", 1..80),
        target in 1usize..40,
    ) {
        let dir = case_dir("compact");
        let db = ShardedDb::open(&dir, DEFAULT_DOC_LIMIT, "props").unwrap();
        for (i, key) in keys.iter().enumerate() {
            db.upsert(doc(key, i as i64)).unwrap();
        }
        db.save().unwrap();

        let first = db.compact_with_target(target).unwrap();
        let manifest_after_first =
            std::fs::read_to_string(dir.join(synapse_store::sharded::MANIFEST_FILE)).unwrap();
        let second = db.compact_with_target(target).unwrap();
        prop_assert!(!second.changed, "second pass must be a no-op: {:?}", second);
        prop_assert_eq!(first.files_after, second.files_after);
        let manifest_after_second =
            std::fs::read_to_string(dir.join(synapse_store::sharded::MANIFEST_FILE)).unwrap();
        prop_assert_eq!(manifest_after_first, manifest_after_second);

        // Contents survive both passes and a reload.
        let back = ShardedDb::open(&dir, DEFAULT_DOC_LIMIT, "props").unwrap();
        prop_assert_eq!(back.len(), db.len());
        for key in &keys {
            prop_assert_eq!(back.get(key), db.get(key));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn removals_tombstone_and_survive_reload(
        keys in proptest::collection::vec("[0-9a-f]{16}", 2..40),
        drop_each in 2usize..5,
    ) {
        let dir = case_dir("remove");
        let db = ShardedDb::open(&dir, DEFAULT_DOC_LIMIT, "props").unwrap();
        for key in &keys {
            db.upsert(doc(key, 7)).unwrap();
        }
        db.save().unwrap();
        let dropped: Vec<&String> = keys.iter().step_by(drop_each).collect();
        for key in &dropped {
            db.remove(key);
        }
        db.save().unwrap();
        let back = ShardedDb::open(&dir, DEFAULT_DOC_LIMIT, "props").unwrap();
        prop_assert_eq!(back.len(), db.len());
        for key in &dropped {
            prop_assert!(back.get(key).is_none());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
