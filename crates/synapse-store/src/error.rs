//! Error type for the persistence layer.

use std::fmt;

/// Errors produced by the document store and the file store.
#[derive(Debug)]
pub enum StoreError {
    /// A document exceeded the per-document size limit (MongoDB's
    /// 16 MB in the paper).
    DocumentTooLarge {
        /// Serialized size of the offending document in bytes.
        size: usize,
        /// Configured limit in bytes.
        limit: usize,
    },
    /// No document/profile matched the query.
    NotFound(String),
    /// A document with the same id already exists.
    DuplicateId(String),
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// JSON (de)serialization failure.
    Serde(serde_json::Error),
    /// A persisted store is internally inconsistent (bad manifest,
    /// misrouted document, unsupported layout version).
    Corrupt(String),
    /// The data model rejected a profile (validation).
    Model(synapse_model::ModelError),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::DocumentTooLarge { size, limit } => {
                write!(f, "document of {size} bytes exceeds the {limit}-byte limit")
            }
            StoreError::NotFound(what) => write!(f, "not found: {what}"),
            StoreError::DuplicateId(id) => write!(f, "duplicate document id: {id}"),
            StoreError::Io(e) => write!(f, "io error: {e}"),
            StoreError::Serde(e) => write!(f, "serialization error: {e}"),
            StoreError::Corrupt(what) => write!(f, "corrupt store: {what}"),
            StoreError::Model(e) => write!(f, "model error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Serde(e) => Some(e),
            StoreError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<serde_json::Error> for StoreError {
    fn from(e: serde_json::Error) -> Self {
        StoreError::Serde(e)
    }
}

impl From<synapse_model::ModelError> for StoreError {
    fn from(e: synapse_model::ModelError) -> Self {
        StoreError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = StoreError::DocumentTooLarge {
            size: 20,
            limit: 10,
        };
        assert!(e.to_string().contains("20"));
        assert!(e.to_string().contains("10"));
        assert!(StoreError::NotFound("x".into()).to_string().contains('x'));
        assert!(StoreError::DuplicateId("d".into())
            .to_string()
            .contains('d'));
    }

    #[test]
    fn conversions() {
        let io: StoreError = std::io::Error::other("boom").into();
        assert!(matches!(io, StoreError::Io(_)));
        let sj: Result<u8, _> = serde_json::from_str("x");
        let e: StoreError = sj.unwrap_err().into();
        assert!(matches!(e, StoreError::Serde(_)));
        let m: StoreError = synapse_model::ModelError::EmptyProfile.into();
        assert!(matches!(m, StoreError::Model(_)));
    }
}
