#![warn(missing_docs)]

//! Profile persistence for Synapse.
//!
//! The paper stores profiles either in a MongoDB database — indexed by
//! the `(command, tags)` combination, subject to MongoDB's 16 MB
//! document limit (§4.5, "DB limitations") — or on disk as files (no
//! size limit). This crate provides both backends without requiring a
//! server:
//!
//! * [`DocumentDb`] — an embedded, thread-safe JSON document store with
//!   named collections, subset-match queries and a configurable
//!   per-document size limit defaulting to 16 MB. It reproduces the
//!   paper's ~250 k-sample cap (and the Fig. 4 footnote about the
//!   largest configuration missing data samples).
//! * [`FileStore`] — one profile per JSON file, unlimited samples.
//! * [`ProfileStore`] — the backend-independent interface the profiler
//!   and emulator use ("search the database for a matching profile").
//! * [`ShardedDb`] — a sharded, compacting store for very large
//!   keyspaces (campaign result caches): 256 shard files by key
//!   prefix, dirty-shard-only saves, a manifest recording the layout,
//!   and a compaction pass merging small shards. On-disk stores are
//!   multi-process safe: opens/saves/compactions run under an advisory
//!   [`FileLock`] and dirty saves merge back documents concurrent
//!   processes added, so cluster workers can share one cache directory.

pub mod collection;
pub mod db;
pub mod document;
pub mod error;
pub mod filestore;
pub mod lock;
pub mod profilestore;
pub mod query;
pub mod sharded;

pub use collection::Collection;
pub use db::DocumentDb;
pub use document::{Document, DEFAULT_DOC_LIMIT};
pub use error::StoreError;
pub use filestore::FileStore;
pub use lock::FileLock;
pub use profilestore::{DbProfileStore, ProfileStore, SaveReport};
pub use query::Query;
pub use sharded::{
    shard_of, CompactStats, SaveStats, ShardStats, ShardedDb, StoreCounters, LOCK_FILE, SHARD_COUNT,
};
