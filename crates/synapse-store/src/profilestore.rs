//! Backend-independent profile storage interface.
//!
//! `radical.synapse.profile()` stores results "on disk or in a MongoDB
//! database" and `emulate()` "uses the command/tag combination ... to
//! search the database for a matching profile" (§4). This module
//! provides that interface over both backends, including the database
//! backend's document-size truncation behaviour that the paper observes
//! in Fig. 4 ("the largest configuration misses one data sample due to
//! limitations in the database backend").

use std::sync::Arc;

use serde_json::json;
use synapse_model::{Profile, ProfileKey, ProfileSet};

use crate::db::DocumentDb;
use crate::document::Document;
use crate::error::StoreError;
use crate::filestore::FileStore;
use crate::query::Query;

/// Outcome of storing one profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SaveReport {
    /// Samples actually persisted.
    pub stored_samples: usize,
    /// Trailing samples dropped to fit the backend's document limit
    /// (always 0 for the file store).
    pub dropped_samples: usize,
}

/// A storage backend for profiles.
pub trait ProfileStore {
    /// Persist a profile. Backends with size limits may truncate
    /// trailing samples; the report says how many were kept/dropped.
    fn save(&self, profile: &Profile) -> Result<SaveReport, StoreError>;

    /// Load every profile matching the query key (equal command,
    /// subset tags), in recording order.
    fn load_matching(&self, query: &ProfileKey) -> Result<Vec<Profile>, StoreError>;

    /// Load matches as a [`ProfileSet`]; errors when nothing matches.
    fn load_set(&self, query: &ProfileKey) -> Result<ProfileSet, StoreError> {
        let profiles = self.load_matching(query)?;
        if profiles.is_empty() {
            return Err(StoreError::NotFound(format!("profiles for {query}")));
        }
        let mut set = ProfileSet::new();
        for p in profiles {
            set.push(p)?;
        }
        Ok(set)
    }

    /// The single most representative matching profile (closest to the
    /// mean runtime), used as the emulation input.
    fn load_representative(&self, query: &ProfileKey) -> Result<Profile, StoreError> {
        let set = self.load_set(query)?;
        set.representative()
            .cloned()
            .ok_or_else(|| StoreError::NotFound(format!("profiles for {query}")))
    }
}

impl ProfileStore for FileStore {
    fn save(&self, profile: &Profile) -> Result<SaveReport, StoreError> {
        FileStore::save(self, profile)?;
        Ok(SaveReport {
            stored_samples: profile.len(),
            dropped_samples: 0,
        })
    }

    fn load_matching(&self, query: &ProfileKey) -> Result<Vec<Profile>, StoreError> {
        FileStore::load_matching(self, query)
    }
}

/// Database-backed profile storage: one document per profile run in a
/// `profiles` collection, indexed by the `(command, tags)` key.
pub struct DbProfileStore {
    db: Arc<DocumentDb>,
    collection: String,
}

impl DbProfileStore {
    /// Wrap a database, using the conventional `profiles` collection.
    pub fn new(db: Arc<DocumentDb>) -> Self {
        Self::with_collection(db, "profiles")
    }

    /// Wrap a database with a custom collection name.
    pub fn with_collection(db: Arc<DocumentDb>, collection: impl Into<String>) -> Self {
        DbProfileStore {
            db,
            collection: collection.into(),
        }
    }

    /// The underlying database handle.
    pub fn db(&self) -> &Arc<DocumentDb> {
        &self.db
    }

    fn key_query(query: &ProfileKey) -> Query {
        let tags: serde_json::Map<String, serde_json::Value> = query
            .tags
            .iter()
            .map(|(k, v)| (k.to_string(), json!(v)))
            .collect();
        let mut q = Query::all().field("key.command", query.command.clone());
        if !tags.is_empty() {
            q = q.field("key.tags", serde_json::Value::Object(tags));
        }
        q
    }
}

impl ProfileStore for DbProfileStore {
    fn save(&self, profile: &Profile) -> Result<SaveReport, StoreError> {
        let limit = self.db.doc_limit();
        let (fitted, dropped) = fit_to_limit(profile, limit)?;
        let seq = self
            .db
            .count(&self.collection, &Self::key_query(&profile.key));
        let id = format!("{}@{:06}", profile.key.id(), seq + 1);
        let doc = Document::new(id, &fitted)?;
        self.db.insert(&self.collection, doc)?;
        Ok(SaveReport {
            stored_samples: fitted.len(),
            dropped_samples: dropped,
        })
    }

    fn load_matching(&self, query: &ProfileKey) -> Result<Vec<Profile>, StoreError> {
        let docs = self.db.find(&self.collection, &Self::key_query(query));
        docs.iter().map(Document::decode).collect()
    }
}

/// Truncate trailing samples until the serialized profile fits the
/// per-document limit. Returns the (possibly truncated) profile and
/// the number of dropped samples.
///
/// This reproduces the MongoDB behaviour the paper reports: the sample
/// *series* is capped, while totals silently lose the tail — which is
/// why the paper's largest configuration "misses one data sample".
fn fit_to_limit(profile: &Profile, limit: usize) -> Result<(Profile, usize), StoreError> {
    let full = serde_json::to_string(profile)?;
    if full.len() <= limit {
        return Ok((profile.clone(), 0));
    }
    // Binary search the largest sample count that fits.
    let mut lo = 0usize; // always fits (assuming the shell fits)
    let mut hi = profile.len(); // known not to fit
    let shell_fits = {
        let mut p = profile.clone();
        p.samples.clear();
        serde_json::to_string(&p)?.len() <= limit
    };
    if !shell_fits {
        return Err(StoreError::DocumentTooLarge {
            size: full.len(),
            limit,
        });
    }
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        let mut p = profile.clone();
        p.samples.truncate(mid);
        if serde_json::to_string(&p)?.len() <= limit {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let mut fitted = profile.clone();
    fitted.samples.truncate(lo);
    Ok((fitted, profile.len() - lo))
}

#[cfg(test)]
mod tests {
    use super::*;
    use synapse_model::{Sample, SystemInfo, Tags};

    fn profile(cmd: &str, tags: &str, nsamples: usize, runtime: f64) -> Profile {
        let mut p = Profile::new(
            ProfileKey::new(cmd, Tags::parse(tags)),
            SystemInfo::default(),
            1.0,
        );
        p.runtime = runtime;
        for i in 0..nsamples {
            let mut s = Sample::at(i as f64, 1.0);
            s.compute.cycles = 1000 + i as u64;
            p.push(s).unwrap();
        }
        p
    }

    #[test]
    fn db_store_roundtrip() {
        let store = DbProfileStore::new(Arc::new(DocumentDb::new()));
        let p = profile("app", "steps=10", 5, 5.0);
        let rep = store.save(&p).unwrap();
        assert_eq!(rep.stored_samples, 5);
        assert_eq!(rep.dropped_samples, 0);
        let got = store.load_matching(&p.key).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0], p);
    }

    #[test]
    fn db_store_multiple_runs_and_representative() {
        let store = DbProfileStore::new(Arc::new(DocumentDb::new()));
        for rt in [1.0, 2.0, 9.0] {
            store.save(&profile("app", "steps=10", 2, rt)).unwrap();
        }
        let key = ProfileKey::new("app", Tags::parse("steps=10"));
        let set = store.load_set(&key).unwrap();
        assert_eq!(set.len(), 3);
        // mean = 4.0, closest runtime is 2.0
        let rep = store.load_representative(&key).unwrap();
        assert_eq!(rep.runtime, 2.0);
    }

    #[test]
    fn db_store_subset_tag_query() {
        let store = DbProfileStore::new(Arc::new(DocumentDb::new()));
        store
            .save(&profile("app", "steps=10,host=thinkie", 1, 1.0))
            .unwrap();
        store
            .save(&profile("app", "steps=20,host=thinkie", 1, 1.0))
            .unwrap();
        let by_host = store
            .load_matching(&ProfileKey::new("app", Tags::parse("host=thinkie")))
            .unwrap();
        assert_eq!(by_host.len(), 2);
        let by_steps = store
            .load_matching(&ProfileKey::new("app", Tags::parse("steps=20")))
            .unwrap();
        assert_eq!(by_steps.len(), 1);
        let untagged_query = store
            .load_matching(&ProfileKey::new("app", Tags::new()))
            .unwrap();
        assert_eq!(untagged_query.len(), 2);
    }

    #[test]
    fn small_doc_limit_truncates_trailing_samples() {
        // A limit that fits the shell plus a few samples only.
        let db = Arc::new(DocumentDb::with_limit(2000));
        let store = DbProfileStore::new(db);
        let p = profile("app", "", 100, 100.0);
        let rep = store.save(&p).unwrap();
        assert!(rep.dropped_samples > 0, "expected truncation");
        assert_eq!(rep.stored_samples + rep.dropped_samples, 100);
        let got = store.load_matching(&p.key).unwrap();
        assert_eq!(got[0].len(), rep.stored_samples);
        // The kept prefix is exactly the first samples (the tail was
        // dropped, like the paper's missing sample).
        assert_eq!(got[0].samples[..], p.samples[..rep.stored_samples]);
    }

    #[test]
    fn impossible_limit_is_an_error() {
        let db = Arc::new(DocumentDb::with_limit(10));
        let store = DbProfileStore::new(db);
        let p = profile("app-with-a-reasonably-long-command-name", "", 1, 1.0);
        assert!(matches!(
            store.save(&p),
            Err(StoreError::DocumentTooLarge { .. })
        ));
    }

    #[test]
    fn load_set_missing_key_errors() {
        let store = DbProfileStore::new(Arc::new(DocumentDb::new()));
        let q = ProfileKey::new("ghost", Tags::new());
        assert!(matches!(store.load_set(&q), Err(StoreError::NotFound(_))));
    }

    #[test]
    fn file_store_implements_trait_without_truncation() {
        let dir = std::env::temp_dir().join(format!("synapse-ps-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = FileStore::open(&dir).unwrap();
        let p = profile("app", "k=v", 50, 50.0);
        let rep = ProfileStore::save(&store, &p).unwrap();
        assert_eq!(rep.dropped_samples, 0);
        assert_eq!(rep.stored_samples, 50);
        let got = ProfileStore::load_matching(&store, &p.key).unwrap();
        assert_eq!(got.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fit_to_limit_is_monotone() {
        let p = profile("a", "", 20, 20.0);
        let full_len = serde_json::to_string(&p).unwrap().len();
        let (all, d0) = fit_to_limit(&p, full_len).unwrap();
        assert_eq!(d0, 0);
        assert_eq!(all.len(), 20);
        let (half, dh) = fit_to_limit(&p, full_len / 2).unwrap();
        assert!(dh > 0);
        assert!(half.len() < 20);
        assert!(serde_json::to_string(&half).unwrap().len() <= full_len / 2);
    }
}
