//! The embedded document database: named collections plus disk
//! persistence.
//!
//! This is the MongoDB substitute: thread-safe, durable (explicit
//! `save`/`open` against a directory with one JSON file per
//! collection), and enforcing the per-document size limit that gives
//! rise to the paper's ~250 k-sample cap.

use std::fs;
use std::path::{Path, PathBuf};

use parking_lot::RwLock;

use crate::collection::Collection;
use crate::document::{Document, DEFAULT_DOC_LIMIT};
use crate::error::StoreError;
use crate::query::Query;

/// An embedded, thread-safe document database.
pub struct DocumentDb {
    doc_limit: usize,
    collections: RwLock<Vec<Collection>>,
}

impl DocumentDb {
    /// In-memory database with the default 16 MB document limit.
    pub fn new() -> Self {
        Self::with_limit(DEFAULT_DOC_LIMIT)
    }

    /// In-memory database with a custom per-document limit.
    pub fn with_limit(doc_limit: usize) -> Self {
        DocumentDb {
            doc_limit,
            collections: RwLock::new(Vec::new()),
        }
    }

    /// Configured per-document limit.
    pub fn doc_limit(&self) -> usize {
        self.doc_limit
    }

    /// Names of all existing collections, sorted.
    pub fn collection_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .collections
            .read()
            .iter()
            .map(|c| c.name().to_string())
            .collect();
        names.sort();
        names
    }

    /// Run a closure with read access to a collection. Returns `None`
    /// when the collection does not exist.
    pub fn with_collection<R>(&self, name: &str, f: impl FnOnce(&Collection) -> R) -> Option<R> {
        let guard = self.collections.read();
        guard.iter().find(|c| c.name() == name).map(f)
    }

    /// Run a closure with write access to a collection, creating it on
    /// first use (MongoDB semantics).
    pub fn with_collection_mut<R>(&self, name: &str, f: impl FnOnce(&mut Collection) -> R) -> R {
        let mut guard = self.collections.write();
        if let Some(c) = guard.iter_mut().find(|c| c.name() == name) {
            return f(c);
        }
        guard.push(Collection::with_limit(name, self.doc_limit));
        let c = guard.last_mut().expect("just pushed");
        f(c)
    }

    /// Insert a document into a collection (created on demand).
    pub fn insert(&self, collection: &str, doc: Document) -> Result<(), StoreError> {
        self.with_collection_mut(collection, |c| c.insert(doc))
    }

    /// Upsert a document into a collection (created on demand).
    pub fn upsert(&self, collection: &str, doc: Document) -> Result<(), StoreError> {
        self.with_collection_mut(collection, |c| c.upsert(doc))
    }

    /// All matching documents of a collection (cloned out of the lock).
    pub fn find(&self, collection: &str, query: &Query) -> Vec<Document> {
        self.with_collection(collection, |c| c.find(query).into_iter().cloned().collect())
            .unwrap_or_default()
    }

    /// First matching document.
    pub fn find_one(&self, collection: &str, query: &Query) -> Option<Document> {
        self.with_collection(collection, |c| c.find_one(query).cloned())
            .flatten()
    }

    /// Count matches.
    pub fn count(&self, collection: &str, query: &Query) -> usize {
        self.with_collection(collection, |c| c.count(query))
            .unwrap_or(0)
    }

    /// Remove a document by id. `Ok(true)` when something was removed.
    pub fn remove(&self, collection: &str, id: &str) -> bool {
        self.with_collection_mut(collection, |c| c.remove(id).is_some())
    }

    /// Drop a whole collection. `true` when it existed.
    pub fn drop_collection(&self, name: &str) -> bool {
        let mut guard = self.collections.write();
        let before = guard.len();
        guard.retain(|c| c.name() != name);
        guard.len() != before
    }

    /// Persist all collections into a directory (one `<name>.json` per
    /// collection). The directory is created if needed; collections
    /// removed since the last save are *not* deleted from disk — call
    /// sites that need that semantic should save into a fresh
    /// directory.
    pub fn save(&self, dir: impl AsRef<Path>) -> Result<(), StoreError> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir)?;
        for c in self.collections.read().iter() {
            let path = collection_path(dir, c.name());
            fs::write(path, c.to_json()?)?;
        }
        Ok(())
    }

    /// Load a database from a directory previously written by
    /// [`DocumentDb::save`].
    pub fn open(dir: impl AsRef<Path>, doc_limit: usize) -> Result<Self, StoreError> {
        let dir = dir.as_ref();
        let db = DocumentDb::with_limit(doc_limit);
        if !dir.exists() {
            return Ok(db);
        }
        let mut collections = Vec::new();
        let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|e| e == "json"))
            .collect();
        entries.sort();
        for path in entries {
            let name = path
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("unnamed")
                .to_string();
            let json = fs::read_to_string(&path)?;
            collections.push(Collection::from_json(name, doc_limit, &json)?);
        }
        *db.collections.write() = collections;
        Ok(db)
    }
}

impl Default for DocumentDb {
    fn default() -> Self {
        DocumentDb::new()
    }
}

fn collection_path(dir: &Path, name: &str) -> PathBuf {
    // Sanitize the collection name for the filesystem.
    let safe: String = name
        .chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' || c == '-' {
                c
            } else {
                '_'
            }
        })
        .collect();
    dir.join(format!("{safe}.json"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn doc(id: &str, n: i64) -> Document {
        Document {
            id: id.into(),
            body: json!({"n": n}),
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("synapse-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn collections_created_on_demand() {
        let db = DocumentDb::new();
        assert!(db.collection_names().is_empty());
        db.insert("profiles", doc("a", 1)).unwrap();
        assert_eq!(db.collection_names(), vec!["profiles".to_string()]);
        assert_eq!(db.count("profiles", &Query::all()), 1);
        assert_eq!(db.count("nonexistent", &Query::all()), 0);
    }

    #[test]
    fn find_and_remove_through_db() {
        let db = DocumentDb::new();
        db.insert("c", doc("a", 1)).unwrap();
        db.insert("c", doc("b", 2)).unwrap();
        let found = db.find("c", &Query::all().field("n", 2));
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].id, "b");
        assert!(db.find_one("c", &Query::all().field("n", 3)).is_none());
        assert!(db.remove("c", "a"));
        assert!(!db.remove("c", "a"));
        assert_eq!(db.count("c", &Query::all()), 1);
    }

    #[test]
    fn drop_collection() {
        let db = DocumentDb::new();
        db.insert("x", doc("a", 1)).unwrap();
        assert!(db.drop_collection("x"));
        assert!(!db.drop_collection("x"));
        assert!(db.collection_names().is_empty());
    }

    #[test]
    fn doc_limit_propagates_to_collections() {
        let db = DocumentDb::with_limit(16);
        let big = Document {
            id: "b".into(),
            body: json!({"p": "x".repeat(64)}),
        };
        assert!(matches!(
            db.insert("c", big),
            Err(StoreError::DocumentTooLarge { .. })
        ));
    }

    #[test]
    fn save_open_roundtrip() {
        let dir = tmpdir("roundtrip");
        let db = DocumentDb::new();
        db.insert("alpha", doc("a", 1)).unwrap();
        db.insert("alpha", doc("b", 2)).unwrap();
        db.insert("beta", doc("c", 3)).unwrap();
        db.save(&dir).unwrap();

        let back = DocumentDb::open(&dir, DEFAULT_DOC_LIMIT).unwrap();
        assert_eq!(back.collection_names(), vec!["alpha", "beta"]);
        assert_eq!(back.count("alpha", &Query::all()), 2);
        assert_eq!(back.find_one("beta", &Query::all()).unwrap().body["n"], 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_missing_dir_yields_empty_db() {
        let db = DocumentDb::open("/nonexistent/synapse-db", DEFAULT_DOC_LIMIT).unwrap();
        assert!(db.collection_names().is_empty());
    }

    #[test]
    fn odd_collection_names_are_sanitized_on_disk() {
        let dir = tmpdir("sanitize");
        let db = DocumentDb::new();
        db.insert("weird/name with spaces", doc("a", 1)).unwrap();
        db.save(&dir).unwrap();
        // File exists with sanitized name.
        assert!(dir.join("weird_name_with_spaces.json").exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_inserts_from_threads() {
        let db = std::sync::Arc::new(DocumentDb::new());
        let mut handles = Vec::new();
        for t in 0..4 {
            let db = db.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..25 {
                    db.insert("c", doc(&format!("{t}-{i}"), i)).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(db.count("c", &Query::all()), 100);
    }
}
