//! Advisory cross-process file locking for shared store directories.
//!
//! Several processes (cluster workers, concurrent CLI runs) may share
//! one [`ShardedDb`](crate::ShardedDb) directory. Writes are already
//! atomic per file (temp + rename), but the manifest commit and the
//! read-merge-write of a dirty save must not interleave between
//! processes, or a layout rewrite can orphan another process's data.
//! [`FileLock`] wraps `flock(2)` on a dedicated lock file inside the
//! store directory: exclusive, advisory, released on drop (and by the
//! kernel if the holder dies — no stale-lock recovery needed).
//!
//! Acquisition first tries non-blocking so contention is *observable*:
//! the store counts how often a save had to wait on another process,
//! and `/store/stats` reports it — the number that says whether a
//! shared cache directory is a win or a bottleneck.

use std::fs::{File, OpenOptions};
use std::io;
use std::path::Path;

/// Held advisory lock on a file; released on drop.
#[derive(Debug)]
pub struct FileLock {
    // Kept only for its open file description: dropping closes the fd,
    // which releases the flock.
    _file: File,
}

impl FileLock {
    /// Acquire an exclusive advisory lock on `path`, creating the file
    /// if needed. Returns the held lock and whether the acquisition
    /// was *contended* (another process held it and we had to block).
    pub fn exclusive(path: &Path) -> io::Result<(FileLock, bool)> {
        let file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .read(true)
            .write(true)
            .open(path)?;
        let contended = lock_exclusive(&file)?;
        Ok((FileLock { _file: file }, contended))
    }
}

#[cfg(unix)]
fn lock_exclusive(file: &File) -> io::Result<bool> {
    use std::os::unix::io::AsRawFd;
    let fd = file.as_raw_fd();
    // Probe non-blocking first: success means no contention.
    // SAFETY: fd is the raw descriptor of `file`, which outlives this
    // call; flock has no memory preconditions.
    if unsafe { libc::flock(fd, libc::LOCK_EX | libc::LOCK_NB) } == 0 {
        return Ok(false);
    }
    let err = io::Error::last_os_error();
    // EWOULDBLOCK (EAGAIN) means held elsewhere; anything else is a
    // real failure.
    if err.kind() != io::ErrorKind::WouldBlock {
        return Err(err);
    }
    loop {
        // SAFETY: same fd as above, still owned by `file`.
        if unsafe { libc::flock(fd, libc::LOCK_EX) } == 0 {
            return Ok(true);
        }
        let err = io::Error::last_os_error();
        // flock restarts are the caller's job when a signal lands.
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

#[cfg(not(unix))]
fn lock_exclusive(_file: &File) -> io::Result<bool> {
    // Advisory locking is best-effort; without flock the store falls
    // back to single-process semantics.
    Ok(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lock_path(tag: &str) -> std::path::PathBuf {
        let p = std::env::temp_dir().join(format!("synapse-lock-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn uncontended_acquisition_reports_no_contention() {
        let path = lock_path("free");
        let (lock, contended) = FileLock::exclusive(&path).unwrap();
        assert!(!contended);
        drop(lock);
        // Re-acquirable after release.
        let (_again, contended) = FileLock::exclusive(&path).unwrap();
        assert!(!contended);
        let _ = std::fs::remove_file(&path);
    }

    #[cfg(unix)]
    #[test]
    fn a_second_holder_blocks_until_release_and_observes_contention() {
        // flock is per open file description, so two locks *within one
        // process* contend the same way two processes do.
        let path = lock_path("contend");
        let (first, _) = FileLock::exclusive(&path).unwrap();
        let path2 = path.clone();
        let waiter = std::thread::spawn(move || {
            let (_lock, contended) = FileLock::exclusive(&path2).unwrap();
            contended
        });
        // Give the waiter time to hit the blocking path, then release.
        std::thread::sleep(std::time::Duration::from_millis(50));
        drop(first);
        assert!(waiter.join().unwrap(), "waiter saw contention");
        let _ = std::fs::remove_file(&path);
    }
}
