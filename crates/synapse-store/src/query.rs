//! Subset-match queries over JSON documents.
//!
//! The paper uses the `(command, tags)` combination as the search index
//! of the profile database. We implement the minimal query semantics
//! that requires: a query is a JSON object, and a document matches when
//! every queried field is present with an equal value. Nested fields
//! are addressed with dotted paths (`"key.command"`), and querying with
//! an object value requires subset-match recursively — so a query for
//! two tags matches a document carrying those two tags plus more.

use serde_json::Value;

/// A structural query against document bodies.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    criteria: Vec<(String, Value)>,
}

impl Query {
    /// The empty query (matches everything).
    pub fn all() -> Self {
        Query {
            criteria: Vec::new(),
        }
    }

    /// Add an equality criterion on a dotted field path.
    pub fn field(mut self, path: impl Into<String>, value: impl Into<Value>) -> Self {
        self.criteria.push((path.into(), value.into()));
        self
    }

    /// Number of criteria.
    pub fn len(&self) -> usize {
        self.criteria.len()
    }

    /// Whether this query has no criteria.
    pub fn is_empty(&self) -> bool {
        self.criteria.is_empty()
    }

    /// Evaluate the query against a document body.
    pub fn matches(&self, body: &Value) -> bool {
        self.criteria
            .iter()
            .all(|(path, expected)| match lookup(body, path) {
                Some(actual) => subset_eq(expected, actual),
                None => false,
            })
    }
}

impl Default for Query {
    fn default() -> Self {
        Query::all()
    }
}

/// Resolve a dotted path inside a JSON value.
fn lookup<'a>(body: &'a Value, path: &str) -> Option<&'a Value> {
    let mut cur = body;
    for seg in path.split('.') {
        cur = cur.get(seg)?;
    }
    Some(cur)
}

/// `expected` matches `actual` if they are equal scalars/arrays, or if
/// both are objects and every expected key matches recursively (subset
/// semantics, like a MongoDB equality filter over embedded tags).
fn subset_eq(expected: &Value, actual: &Value) -> bool {
    match (expected, actual) {
        (Value::Object(e), Value::Object(a)) => e
            .iter()
            .all(|(k, ev)| a.get(k).is_some_and(|av| subset_eq(ev, av))),
        _ => expected == actual,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn doc() -> Value {
        json!({
            "key": {
                "command": "gromacs mdrun",
                "tags": {"steps": "100000", "host": "thinkie"}
            },
            "runtime": 12.5,
            "n": 3
        })
    }

    #[test]
    fn empty_query_matches_everything() {
        assert!(Query::all().matches(&doc()));
        assert!(Query::all().matches(&json!(null)));
        assert!(Query::default().is_empty());
    }

    #[test]
    fn top_level_equality() {
        assert!(Query::all().field("n", 3).matches(&doc()));
        assert!(!Query::all().field("n", 4).matches(&doc()));
        assert!(!Query::all().field("missing", 1).matches(&doc()));
    }

    #[test]
    fn dotted_path_lookup() {
        let q = Query::all().field("key.command", "gromacs mdrun");
        assert!(q.matches(&doc()));
        let q2 = Query::all().field("key.tags.steps", "100000");
        assert!(q2.matches(&doc()));
        let q3 = Query::all().field("key.tags.steps", "1");
        assert!(!q3.matches(&doc()));
    }

    #[test]
    fn object_values_use_subset_semantics() {
        // Query one tag; the document has two -> still a match.
        let q = Query::all().field("key.tags", json!({"steps": "100000"}));
        assert!(q.matches(&doc()));
        // Query a tag the document lacks -> no match.
        let q2 = Query::all().field("key.tags", json!({"gpu": "1"}));
        assert!(!q2.matches(&doc()));
        // Nested subset on the whole key object.
        let q3 = Query::all().field(
            "key",
            json!({"command": "gromacs mdrun", "tags": {"host": "thinkie"}}),
        );
        assert!(q3.matches(&doc()));
    }

    #[test]
    fn conjunction_of_criteria() {
        let q = Query::all()
            .field("n", 3)
            .field("key.command", "gromacs mdrun");
        assert!(q.matches(&doc()));
        let q2 = Query::all().field("n", 3).field("key.command", "other");
        assert!(!q2.matches(&doc()));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn scalar_vs_object_mismatch() {
        let q = Query::all().field("runtime", json!({"x": 1}));
        assert!(!q.matches(&doc()));
        let q2 = Query::all().field("key", "not an object");
        assert!(!q2.matches(&doc()));
    }
}
