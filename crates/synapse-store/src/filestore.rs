//! File-based profile storage: one JSON file per profile, no size
//! limit ("File-based storage of profiles is available, which poses no
//! limit on the number of samples", §4.5).

use std::fs;
use std::path::{Path, PathBuf};

use synapse_model::{Profile, ProfileKey, ProfileSet};

use crate::error::StoreError;

/// Directory-backed profile storage.
///
/// Profiles for the same `(command, tags)` key are stored as numbered
/// files inside a per-key subdirectory, preserving the order in which
/// repeated profiling runs were recorded.
pub struct FileStore {
    root: PathBuf,
}

impl FileStore {
    /// Open (and create) a file store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(FileStore { root })
    }

    /// Root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn key_dir(&self, key: &ProfileKey) -> PathBuf {
        self.root.join(sanitize(&key.id()))
    }

    /// Store a profile; returns the path written.
    pub fn save(&self, profile: &Profile) -> Result<PathBuf, StoreError> {
        let dir = self.key_dir(&profile.key);
        fs::create_dir_all(&dir)?;
        let seq = existing_seqs(&dir)?.last().map_or(1, |s| s + 1);
        let path = dir.join(format!("{seq:06}.json"));
        fs::write(&path, profile.to_json()?)?;
        Ok(path)
    }

    /// Load every stored profile whose key *matches* the query key
    /// (equal command, query tags are a subset of stored tags), in
    /// recording order, grouped key by key.
    pub fn load_matching(&self, query: &ProfileKey) -> Result<Vec<Profile>, StoreError> {
        let mut out = Vec::new();
        if !self.root.exists() {
            return Ok(out);
        }
        let mut dirs: Vec<PathBuf> = fs::read_dir(&self.root)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        dirs.sort();
        for dir in dirs {
            for seq in existing_seqs(&dir)? {
                let path = dir.join(format!("{seq:06}.json"));
                let json = fs::read_to_string(&path)?;
                let profile = Profile::from_json(&json)?;
                if profile.key.matches(query) {
                    out.push(profile);
                }
            }
        }
        Ok(out)
    }

    /// Load all matching profiles as a [`ProfileSet`] for statistics.
    /// Requires all matches to share the exact same key; errors when
    /// nothing matches.
    pub fn load_set(&self, query: &ProfileKey) -> Result<ProfileSet, StoreError> {
        let profiles = self.load_matching(query)?;
        if profiles.is_empty() {
            return Err(StoreError::NotFound(format!("profiles for {query}")));
        }
        let mut set = ProfileSet::new();
        for p in profiles {
            set.push(p)?;
        }
        Ok(set)
    }

    /// All distinct keys with at least one stored profile.
    pub fn keys(&self) -> Result<Vec<ProfileKey>, StoreError> {
        let mut keys = Vec::new();
        if !self.root.exists() {
            return Ok(keys);
        }
        let mut dirs: Vec<PathBuf> = fs::read_dir(&self.root)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        dirs.sort();
        for dir in dirs {
            if let Some(first) = existing_seqs(&dir)?.first() {
                let path = dir.join(format!("{first:06}.json"));
                let profile = Profile::from_json(&fs::read_to_string(path)?)?;
                keys.push(profile.key);
            }
        }
        Ok(keys)
    }

    /// Delete every profile stored for an exact key. `Ok(true)` when
    /// anything was removed.
    pub fn remove(&self, key: &ProfileKey) -> Result<bool, StoreError> {
        let dir = self.key_dir(key);
        if dir.exists() {
            fs::remove_dir_all(dir)?;
            Ok(true)
        } else {
            Ok(false)
        }
    }
}

/// Sorted sequence numbers of profile files in a key directory.
fn existing_seqs(dir: &Path) -> Result<Vec<u64>, StoreError> {
    if !dir.exists() {
        return Ok(Vec::new());
    }
    let mut seqs: Vec<u64> = fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .filter_map(|e| {
            let name = e.file_name();
            let name = name.to_str()?;
            name.strip_suffix(".json")?.parse().ok()
        })
        .collect();
    seqs.sort_unstable();
    Ok(seqs)
}

/// Replace filesystem-hostile characters in a key id.
fn sanitize(id: &str) -> String {
    id.chars()
        .map(|c| {
            if c.is_alphanumeric() || matches!(c, '_' | '-' | '.' | '=' | ',' | '#') {
                c
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use synapse_model::{Sample, SystemInfo, Tags};

    fn tmp(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("synapse-fs-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn profile(cmd: &str, tags: &str, runtime: f64) -> Profile {
        let mut p = Profile::new(
            ProfileKey::new(cmd, Tags::parse(tags)),
            SystemInfo::default(),
            1.0,
        );
        p.runtime = runtime;
        p.push(Sample::at(0.0, 1.0)).unwrap();
        p
    }

    #[test]
    fn save_and_load_roundtrip() {
        let dir = tmp("roundtrip");
        let store = FileStore::open(&dir).unwrap();
        let p = profile("app", "steps=10", 1.5);
        let path = store.save(&p).unwrap();
        assert!(path.exists());
        let loaded = store.load_matching(&p.key).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0], p);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn repeated_saves_accumulate_in_order() {
        let dir = tmp("repeat");
        let store = FileStore::open(&dir).unwrap();
        for i in 1..=3 {
            store.save(&profile("app", "steps=10", i as f64)).unwrap();
        }
        let set = store
            .load_set(&ProfileKey::new("app", Tags::parse("steps=10")))
            .unwrap();
        assert_eq!(set.len(), 3);
        let runtimes: Vec<f64> = set.profiles().iter().map(|p| p.runtime).collect();
        assert_eq!(runtimes, vec![1.0, 2.0, 3.0]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn subset_tag_queries_match() {
        let dir = tmp("subset");
        let store = FileStore::open(&dir).unwrap();
        store
            .save(&profile("app", "steps=10,host=thinkie", 1.0))
            .unwrap();
        store
            .save(&profile("app", "steps=20,host=thinkie", 2.0))
            .unwrap();
        // Query by host only -> both match.
        let q = ProfileKey::new("app", Tags::parse("host=thinkie"));
        assert_eq!(store.load_matching(&q).unwrap().len(), 2);
        // Query by steps -> exactly one.
        let q10 = ProfileKey::new("app", Tags::parse("steps=10"));
        assert_eq!(store.load_matching(&q10).unwrap().len(), 1);
        // Command must match exactly.
        let qc = ProfileKey::new("other", Tags::new());
        assert!(store.load_matching(&qc).unwrap().is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_set_errors_when_empty() {
        let dir = tmp("empty");
        let store = FileStore::open(&dir).unwrap();
        let q = ProfileKey::new("ghost", Tags::new());
        assert!(matches!(store.load_set(&q), Err(StoreError::NotFound(_))));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn keys_lists_distinct_keys() {
        let dir = tmp("keys");
        let store = FileStore::open(&dir).unwrap();
        store.save(&profile("a", "x=1", 1.0)).unwrap();
        store.save(&profile("a", "x=1", 2.0)).unwrap();
        store.save(&profile("b", "", 1.0)).unwrap();
        let keys = store.keys().unwrap();
        assert_eq!(keys.len(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn remove_deletes_all_runs_for_key() {
        let dir = tmp("remove");
        let store = FileStore::open(&dir).unwrap();
        let p = profile("app", "steps=10", 1.0);
        store.save(&p).unwrap();
        store.save(&p).unwrap();
        assert!(store.remove(&p.key).unwrap());
        assert!(!store.remove(&p.key).unwrap());
        assert!(store.load_matching(&p.key).unwrap().is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn hostile_key_characters_are_sanitized() {
        let dir = tmp("hostile");
        let store = FileStore::open(&dir).unwrap();
        let p = profile("../../etc/passwd | rm -rf", "a=/b", 1.0);
        store.save(&p).unwrap();
        // Still loadable through the same key.
        assert_eq!(store.load_matching(&p.key).unwrap().len(), 1);
        // And nothing escaped the root: exactly one sanitized subdir.
        let entries: Vec<_> = fs::read_dir(store.root()).unwrap().collect();
        assert_eq!(entries.len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }
}
