//! JSON documents with a per-document size limit.

use serde::{Deserialize, Serialize};
use serde_json::Value;

use crate::error::StoreError;

/// MongoDB's classic per-document size limit, which (per §4.5 of the
/// paper) caps a single stored profile at roughly 250 000 samples.
pub const DEFAULT_DOC_LIMIT: usize = 16 * 1024 * 1024;

/// One stored document: a string id plus an arbitrary JSON body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Document {
    /// Unique id within its collection.
    pub id: String,
    /// JSON body.
    pub body: Value,
}

impl Document {
    /// Build a document from any serializable value.
    pub fn new(id: impl Into<String>, body: &impl Serialize) -> Result<Document, StoreError> {
        Ok(Document {
            id: id.into(),
            body: serde_json::to_value(body)?,
        })
    }

    /// Serialized size of the body in bytes (what counts against the
    /// document limit, mirroring BSON document size).
    pub fn size(&self) -> usize {
        // `to_string` on a Value cannot fail.
        serde_json::to_string(&self.body)
            .map(|s| s.len())
            .unwrap_or(0)
    }

    /// Check the body against a size limit.
    pub fn check_limit(&self, limit: usize) -> Result<(), StoreError> {
        let size = self.size();
        if size > limit {
            Err(StoreError::DocumentTooLarge { size, limit })
        } else {
            Ok(())
        }
    }

    /// Deserialize the body into a concrete type.
    pub fn decode<T: for<'de> Deserialize<'de>>(&self) -> Result<T, StoreError> {
        Ok(serde_json::from_value(self.body.clone())?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn new_and_decode_roundtrip() {
        #[derive(Serialize, Deserialize, PartialEq, Debug)]
        struct T {
            a: u32,
            b: String,
        }
        let v = T {
            a: 7,
            b: "x".into(),
        };
        let d = Document::new("one", &v).unwrap();
        assert_eq!(d.id, "one");
        let back: T = d.decode().unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn size_counts_serialized_bytes() {
        let d = Document {
            id: "i".into(),
            body: json!({"k": "vvvv"}),
        };
        assert_eq!(d.size(), r#"{"k":"vvvv"}"#.len());
    }

    #[test]
    fn limit_enforced() {
        let d = Document {
            id: "i".into(),
            body: json!({"k": "v".repeat(100)}),
        };
        assert!(d.check_limit(10).is_err());
        assert!(d.check_limit(DEFAULT_DOC_LIMIT).is_ok());
        match d.check_limit(10) {
            Err(StoreError::DocumentTooLarge { size, limit }) => {
                assert!(size > limit);
                assert_eq!(limit, 10);
            }
            other => panic!("expected DocumentTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn decode_type_mismatch_errors() {
        let d = Document {
            id: "i".into(),
            body: json!("a string"),
        };
        let r: Result<u32, _> = d.decode();
        assert!(r.is_err());
    }
}
