//! A sharded, compacting document store for very large key spaces.
//!
//! [`DocumentDb`](crate::DocumentDb) persists each collection as one
//! JSON file, so every save rewrites the whole collection — quadratic
//! total write cost as a campaign grows. [`ShardedDb`] splits one
//! logical keyspace over 256 shard files by key prefix, tracks which
//! shards were mutated since the last save, and only rewrites those.
//! A million-point result store then pays for what changed, not for
//! what exists.
//!
//! On-disk layout under the store directory:
//!
//! ```text
//! <dir>/manifest.json     shard layout, doc counts, engine tag
//! <dir>/shards/ab.json    documents of shard 0xab (JSON array)
//! <dir>/shards/0c-11.json a compacted file holding several shards
//! ```
//!
//! The manifest maps every occupied shard to exactly one data file.
//! Fresh saves give each shard its own file; [`ShardedDb::compact`]
//! merges small neighbouring shards into grouped files (and drops
//! tombstoned ones) so a store of many tiny shards does not degenerate
//! into hundreds of near-empty files. Writes go through a temp-file +
//! rename so a crash mid-save never truncates existing data.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::SystemTime;

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use synapse_telemetry::Counter;

use crate::document::{Document, DEFAULT_DOC_LIMIT};
use crate::error::StoreError;
use crate::lock::FileLock;

/// Number of shards a keyspace is split into (one byte of prefix).
pub const SHARD_COUNT: usize = 256;

/// Manifest file name inside a sharded store directory. Its presence
/// is what marks a directory as holding a sharded store.
pub const MANIFEST_FILE: &str = "manifest.json";

/// Subdirectory holding the shard data files.
pub const SHARD_DIR: &str = "shards";

/// Advisory lock file guarding cross-process mutation of the store
/// directory (see [`crate::lock`]).
pub const LOCK_FILE: &str = "store.lock";

/// On-disk layout version; bump on incompatible manifest changes.
pub const FORMAT_VERSION: u32 = 1;

/// Compaction default: merge neighbouring shards until a data file
/// holds at least this many documents (the last file may hold fewer).
pub const DEFAULT_COMPACT_TARGET: usize = 1024;

/// Map a key to its shard.
///
/// Keys that start with two hex digits (the fingerprint form used by
/// campaign caches) shard by that prefix byte, so shard files align
/// with visible key prefixes. Anything else falls back to FNV-1a over
/// the whole key — stable across platforms and Rust releases.
pub fn shard_of(key: &str) -> u8 {
    let b = key.as_bytes();
    if b.len() >= 2 {
        if let (Some(hi), Some(lo)) = (hex_val(b[0]), hex_val(b[1])) {
            return (hi << 4) | lo;
        }
    }
    let mut hash = 0xcbf29ce484222325u64;
    for &byte in b {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    (hash & 0xff) as u8
}

fn hex_val(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

/// What one `save` actually wrote.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SaveStats {
    /// Shard data files (re)written.
    pub data_files_written: usize,
    /// Shard data files deleted (all their documents removed).
    pub data_files_removed: usize,
    /// Documents serialized into the written files.
    pub docs_written: usize,
    /// Whether the manifest was rewritten.
    pub manifest_written: bool,
}

/// Outcome of a compaction pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactStats {
    /// Data files before the pass.
    pub files_before: usize,
    /// Data files after the pass.
    pub files_after: usize,
    /// Documents in the store.
    pub docs: usize,
    /// Whether anything was rewritten (false ⇒ layout already compact).
    pub changed: bool,
}

/// A point-in-time summary of a sharded store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStats {
    /// Total documents.
    pub docs: usize,
    /// Shards holding at least one document.
    pub occupied_shards: usize,
    /// Shard data files in the on-disk layout.
    pub data_files: usize,
    /// Shards mutated since the last save.
    pub dirty_shards: usize,
    /// Bytes of shard data + manifest on disk (0 for in-memory stores).
    pub bytes_on_disk: u64,
    /// Engine tag recorded in the manifest.
    pub engine: String,
    /// Directory-lock acquisitions by this handle (opens, saves,
    /// compactions). 0 for in-memory stores.
    pub lock_acquisitions: u64,
    /// Of those, acquisitions that had to wait on another process — the
    /// shard-sharing contention signal for clustered cache directories.
    pub lock_contention: u64,
    /// Documents merged *in* from disk during lock-aware saves: results
    /// other processes wrote to shards this handle was rewriting.
    pub reconciled_docs: u64,
}

/// Manifest recording which data file holds which shards.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Manifest {
    format: u32,
    engine: String,
    shard_count: u32,
    groups: Vec<GroupEntry>,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct GroupEntry {
    file: String,
    shards: Vec<u32>,
    docs: u64,
}

/// One data file of the on-disk layout and the shards it holds.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Group {
    file: String,
    shards: Vec<u8>,
}

impl Group {
    fn singleton(shard: u8) -> Group {
        Group {
            file: format!("{shard:02x}.json"),
            shards: vec![shard],
        }
    }

    fn spanning(shards: Vec<u8>) -> Group {
        debug_assert!(!shards.is_empty());
        let file = if shards.len() == 1 {
            format!("{:02x}.json", shards[0])
        } else {
            format!("{:02x}-{:02x}.json", shards[0], shards[shards.len() - 1])
        };
        Group { file, shards }
    }
}

struct State {
    /// One bucket per shard, keys ordered within each bucket.
    shards: Vec<BTreeMap<String, Document>>,
    /// Shards mutated since the last successful save.
    dirty: Vec<bool>,
    /// Keys removed since the last save: the lock-aware reconcile must
    /// not resurrect them from disk (deletion-vs-foreign-insert is
    /// undecidable from file contents alone).
    removed: std::collections::BTreeSet<String>,
    /// Current on-disk layout (empty until the first save).
    groups: Vec<Group>,
    /// Whether the on-disk manifest reflects `groups` and doc counts.
    manifest_synced: bool,
}

/// Cross-process reload-on-miss bookkeeping (see [`ShardedDb::get`]).
///
/// A *generation* is one observed change of the on-disk manifest
/// (another process saved). Misses cost one `stat` while the
/// generation is unchanged; when it moves, the first miss per shard
/// folds that shard's data file in and re-arms the cheap path.
struct ReloadProbe {
    /// Last observed manifest stamp (mtime + length).
    stamp: Option<(SystemTime, u64)>,
    /// Bumped every time the stamp changes.
    generation: u64,
    /// Generation each shard was last folded at (0 = never).
    shard_synced: Vec<u64>,
}

impl ReloadProbe {
    fn new() -> ReloadProbe {
        ReloadProbe {
            stamp: None,
            generation: 0,
            shard_synced: vec![0; SHARD_COUNT],
        }
    }
}

impl State {
    fn empty() -> State {
        State {
            shards: (0..SHARD_COUNT).map(|_| BTreeMap::new()).collect(),
            dirty: vec![false; SHARD_COUNT],
            removed: std::collections::BTreeSet::new(),
            groups: Vec::new(),
            manifest_synced: false,
        }
    }

    fn doc_count(&self) -> usize {
        self.shards.iter().map(BTreeMap::len).sum()
    }
}

/// A sharded, compacting document store over one logical keyspace.
///
/// On-disk stores are multi-process safe: every open/save/compact runs
/// under an exclusive advisory lock on `<dir>/store.lock`, and dirty
/// saves are *lock-aware* — before rewriting a data file, documents
/// another process added to it are merged back in, so concurrent
/// writers sharing one directory never lose each other's results.
pub struct ShardedDb {
    dir: Option<PathBuf>,
    doc_limit: usize,
    engine: String,
    state: RwLock<State>,
    /// Directory-lock acquisitions (opens + saves + compactions).
    ///
    /// These three are [`synapse_telemetry::Counter`]s (still plain
    /// relaxed atomics) so a server can bind the *same* handles into
    /// its metrics registry — `/store/stats` and `/metrics` then read
    /// identical state by construction. See [`ShardedDb::counters`].
    lock_acquisitions: Arc<Counter>,
    /// Of those, ones that had to wait on another process.
    lock_contention: Arc<Counter>,
    /// Foreign documents merged in from disk — during lock-aware saves
    /// and reload-on-miss reads alike.
    reconciled_docs: Arc<Counter>,
    /// Reload-on-miss state for on-disk stores (cross-process cache
    /// *reads*: a miss learns peers' saved results without waiting for
    /// this handle's next save).
    reload: Mutex<ReloadProbe>,
}

/// Clones of a [`ShardedDb`]'s live stat counters, for exposing in a
/// metrics registry (e.g. [`synapse_telemetry::Registry::bind_counter`]).
/// Incrementing happens inside the store; holders only read.
#[derive(Clone)]
pub struct StoreCounters {
    /// Directory-lock acquisitions by this handle.
    pub lock_acquisitions: Arc<Counter>,
    /// Acquisitions that had to wait on another process.
    pub lock_contention: Arc<Counter>,
    /// Foreign documents merged in during lock-aware saves.
    pub reconciled_docs: Arc<Counter>,
}

/// Parsed on-disk manifest: the layout groups plus each data file's
/// recorded document count.
type DiskManifest = (Vec<Group>, BTreeMap<String, u64>);

/// The manifest's change stamp (mtime + length): saves rewrite the
/// manifest atomically, so a changed stamp means another process
/// saved. `None` when no manifest exists (nothing saved yet).
fn manifest_stamp(dir: &Path) -> Option<(SystemTime, u64)> {
    let meta = fs::metadata(dir.join(MANIFEST_FILE)).ok()?;
    Some((meta.modified().ok()?, meta.len()))
}

/// Read and validate the on-disk manifest, if one exists: the groups
/// plus each data file's recorded document count (kept so a save that
/// adopts another process's layout can write back honest counts for
/// files it never loaded).
fn read_disk_manifest(dir: &Path) -> Result<Option<DiskManifest>, StoreError> {
    let manifest_path = dir.join(MANIFEST_FILE);
    if !manifest_path.exists() {
        return Ok(None);
    }
    let manifest: Manifest = serde_json::from_str(&fs::read_to_string(&manifest_path)?)?;
    if manifest.format != FORMAT_VERSION {
        return Err(StoreError::Corrupt(format!(
            "manifest format {} (this engine reads {})",
            manifest.format, FORMAT_VERSION
        )));
    }
    if manifest.shard_count as usize != SHARD_COUNT {
        return Err(StoreError::Corrupt(format!(
            "manifest declares {} shards (expected {})",
            manifest.shard_count, SHARD_COUNT
        )));
    }
    let mut groups = Vec::with_capacity(manifest.groups.len());
    let mut doc_counts = BTreeMap::new();
    let mut claimed = vec![false; SHARD_COUNT];
    for entry in &manifest.groups {
        let mut shards = Vec::with_capacity(entry.shards.len());
        for &s in &entry.shards {
            let idx = s as usize;
            if idx >= SHARD_COUNT {
                return Err(StoreError::Corrupt(format!("shard id {s} out of range")));
            }
            if claimed[idx] {
                return Err(StoreError::Corrupt(format!(
                    "shard {s:02x} claimed by more than one data file"
                )));
            }
            claimed[idx] = true;
            shards.push(s as u8);
        }
        doc_counts.insert(entry.file.clone(), entry.docs);
        groups.push(Group {
            file: entry.file.clone(),
            shards,
        });
    }
    Ok(Some((groups, doc_counts)))
}

impl ShardedDb {
    /// An in-memory store (no persistence; `save` is a no-op).
    pub fn in_memory() -> Self {
        Self::in_memory_with_limit(DEFAULT_DOC_LIMIT)
    }

    /// An in-memory store with a custom per-document limit.
    pub fn in_memory_with_limit(doc_limit: usize) -> Self {
        ShardedDb {
            dir: None,
            doc_limit,
            engine: String::new(),
            state: RwLock::new(State::empty()),
            lock_acquisitions: Arc::new(Counter::new()),
            lock_contention: Arc::new(Counter::new()),
            reconciled_docs: Arc::new(Counter::new()),
            reload: Mutex::new(ReloadProbe::new()),
        }
    }

    /// The live counter handles behind [`ShardStats`]'s lock/reconcile
    /// fields. Bind these into a registry and the exposition reads the
    /// same atomics [`ShardedDb::stats`] reports — no second
    /// bookkeeping path to drift.
    pub fn counters(&self) -> StoreCounters {
        StoreCounters {
            lock_acquisitions: Arc::clone(&self.lock_acquisitions),
            lock_contention: Arc::clone(&self.lock_contention),
            reconciled_docs: Arc::clone(&self.reconciled_docs),
        }
    }

    /// Take the store directory's advisory lock, recording contention.
    fn lock_dir(&self, dir: &Path) -> Result<FileLock, StoreError> {
        let (lock, contended) = FileLock::exclusive(&dir.join(LOCK_FILE))?;
        self.lock_acquisitions.inc();
        if contended {
            self.lock_contention.inc();
        }
        Ok(lock)
    }

    /// Open (or create) a sharded store under `dir`, loading shard
    /// files sequentially. `engine` is an informational tag recorded
    /// in the manifest (e.g. the owning engine's version string).
    pub fn open(
        dir: impl AsRef<Path>,
        doc_limit: usize,
        engine: impl Into<String>,
    ) -> Result<Self, StoreError> {
        Self::open_with_workers(dir, doc_limit, engine, 1)
    }

    /// Open (or create) a sharded store, loading shard files across
    /// `workers` threads (0 ⇒ one per available core, capped at 16).
    /// Parallel loading is what makes warm-up of a million-point cache
    /// scale with cores instead of a single reader thread.
    pub fn open_with_workers(
        dir: impl AsRef<Path>,
        doc_limit: usize,
        engine: impl Into<String>,
        workers: usize,
    ) -> Result<Self, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        let engine = engine.into();
        let db = ShardedDb {
            dir: Some(dir.clone()),
            doc_limit,
            engine,
            state: RwLock::new(State::empty()),
            lock_acquisitions: Arc::new(Counter::new()),
            lock_contention: Arc::new(Counter::new()),
            reconciled_docs: Arc::new(Counter::new()),
            reload: Mutex::new(ReloadProbe::new()),
        };
        if !dir.join(MANIFEST_FILE).exists() {
            // Nothing on disk yet: an empty store needs no lock (the
            // directory may not even exist until the first save).
            return Ok(db);
        }
        // Load under the directory lock so a concurrent save/compaction
        // cannot remove data files between the manifest read and the
        // file reads.
        let lock = db.lock_dir(&dir)?;
        let (groups, _doc_counts) = read_disk_manifest(&dir)?.unwrap_or_default();
        let docs_per_group = Self::load_groups(&dir, &groups, workers)?;
        let mut state = State::empty();
        for (group, docs) in groups.iter().zip(docs_per_group) {
            for doc in docs {
                doc.check_limit(doc_limit)?;
                let shard = shard_of(&doc.id);
                if !group.shards.contains(&shard) {
                    return Err(StoreError::Corrupt(format!(
                        "document {:?} routes to shard {shard:02x}, outside its data file {:?}",
                        doc.id, group.file
                    )));
                }
                state.shards[shard as usize].insert(doc.id.clone(), doc);
            }
        }
        state.groups = groups;
        state.manifest_synced = true;
        // The in-memory image now matches this manifest: stamp it so
        // reload-on-miss stays on its cheap (stat-only) path until
        // another process actually saves.
        if let Some(stamp) = manifest_stamp(&dir) {
            let mut probe = db.reload.lock().expect("reload probe lock");
            probe.stamp = Some(stamp);
            probe.generation = 1;
            probe.shard_synced = vec![1; SHARD_COUNT];
        }
        drop(lock);
        *db.state.write() = state;
        Ok(db)
    }

    /// Read all group files, fanning out over worker threads.
    fn load_groups(
        dir: &Path,
        groups: &[Group],
        workers: usize,
    ) -> Result<Vec<Vec<Document>>, StoreError> {
        let shard_root = dir.join(SHARD_DIR);
        let auto = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(16);
        let workers = if workers == 0 { auto } else { workers }.clamp(1, groups.len().max(1));

        let next = AtomicUsize::new(0);
        let loaded: Mutex<Vec<Option<Vec<Document>>>> = Mutex::new(vec![None; groups.len()]);
        let first_error: Mutex<Option<StoreError>> = Mutex::new(None);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    if idx >= groups.len() {
                        return;
                    }
                    if first_error.lock().expect("error lock").is_some() {
                        return;
                    }
                    let path = shard_root.join(&groups[idx].file);
                    let outcome = fs::read_to_string(&path)
                        .map_err(StoreError::from)
                        .and_then(|json| Ok(serde_json::from_str::<Vec<Document>>(&json)?));
                    match outcome {
                        Ok(docs) => loaded.lock().expect("load lock")[idx] = Some(docs),
                        Err(e) => {
                            first_error.lock().expect("error lock").get_or_insert(e);
                            return;
                        }
                    }
                });
            }
        });
        if let Some(e) = first_error.into_inner().expect("error lock") {
            return Err(e);
        }
        loaded
            .into_inner()
            .expect("load lock")
            .into_iter()
            .enumerate()
            .map(|(i, slot)| {
                slot.ok_or_else(|| {
                    StoreError::Corrupt(format!("shard file {:?} was not loaded", groups[i].file))
                })
            })
            .collect()
    }

    /// Directory this store persists into (None for in-memory stores).
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// Configured per-document size limit.
    pub fn doc_limit(&self) -> usize {
        self.doc_limit
    }

    /// Fetch a document by key (cloned out of the lock).
    ///
    /// On-disk stores are cross-process readable: when the in-memory
    /// image misses, the store checks (one `stat`) whether another
    /// process has saved since it last looked, and if so folds the
    /// missed shard's data file back in before answering — a worker
    /// sharing a cache directory learns its peers' results at *read*
    /// time, not only when its own next save reconciles. The fold is
    /// insert-only (local mutations and tombstones win) and per
    /// manifest generation, so a miss storm on an unchanged directory
    /// costs one `stat` per miss and no reads.
    pub fn get(&self, key: &str) -> Option<Document> {
        let shard = shard_of(key);
        if let Some(doc) = self.state.read().shards[shard as usize].get(key) {
            return Some(doc.clone());
        }
        self.reload_on_miss(key, shard)
    }

    /// The miss path of [`get`](ShardedDb::get): fold the missed
    /// shard's on-disk data file into memory if another process saved
    /// since this handle last looked. Opportunistic by design — reads
    /// race saves without the directory lock (data files are replaced
    /// by atomic rename, so a read sees a complete old or new file,
    /// never a torn one), and any read failure just stays a miss.
    fn reload_on_miss(&self, key: &str, shard: u8) -> Option<Document> {
        let dir = self.dir.as_deref()?;
        let stamp = manifest_stamp(dir)?;
        let generation = {
            let mut probe = self.reload.lock().expect("reload probe lock");
            if probe.stamp != Some(stamp) {
                probe.stamp = Some(stamp);
                probe.generation += 1;
            }
            if probe.shard_synced[shard as usize] >= probe.generation {
                return None; // this shard already reflects the disk
            }
            probe.generation
        };
        // Read manifest + the one group file covering the shard,
        // outside both locks.
        let folded = read_disk_manifest(dir)
            .ok()
            .flatten()
            .and_then(|(groups, _)| {
                let group = groups.into_iter().find(|g| g.shards.contains(&shard))?;
                let json = fs::read_to_string(dir.join(SHARD_DIR).join(&group.file)).ok()?;
                let docs = serde_json::from_str::<Vec<Document>>(&json).ok()?;
                Some((group, docs))
            });
        let mut probe = self.reload.lock().expect("reload probe lock");
        let hit = match folded {
            Some((group, docs)) => {
                let mut state = self.state.write();
                let mut merged = 0u64;
                for doc in docs {
                    let s = shard_of(&doc.id);
                    // Skip documents that don't belong (corrupt file),
                    // were locally removed (tombstones win), or that we
                    // already hold (local mutations win).
                    if !group.shards.contains(&s)
                        || state.removed.contains(&doc.id)
                        || state.shards[s as usize].contains_key(&doc.id)
                    {
                        continue;
                    }
                    // Folded docs are already on disk: not dirty.
                    state.shards[s as usize].insert(doc.id.clone(), doc);
                    merged += 1;
                }
                self.reconciled_docs.add(merged);
                // The whole file was folded: every shard it covers is
                // now synced to this generation.
                for s in &group.shards {
                    let synced = &mut probe.shard_synced[*s as usize];
                    *synced = (*synced).max(generation);
                }
                state.shards[shard as usize].get(key).cloned()
            }
            // No group covers the shard, or the racing save replaced
            // the file under us: stay a miss, but don't retry until
            // the manifest moves again (a hot-loop of disk reads on a
            // permanent miss would be worse than staleness).
            None => None,
        };
        let synced = &mut probe.shard_synced[shard as usize];
        *synced = (*synced).max(generation);
        hit
    }

    /// Insert or replace a document under its id.
    pub fn upsert(&self, doc: Document) -> Result<(), StoreError> {
        doc.check_limit(self.doc_limit)?;
        let shard = shard_of(&doc.id) as usize;
        let mut state = self.state.write();
        state.removed.remove(&doc.id);
        state.shards[shard].insert(doc.id.clone(), doc);
        state.dirty[shard] = true;
        Ok(())
    }

    /// Remove a document by key, returning it. The shard is marked
    /// dirty so the next save rewrites (or tombstones) its file.
    pub fn remove(&self, key: &str) -> Option<Document> {
        let shard = shard_of(key) as usize;
        let mut state = self.state.write();
        let removed = state.shards[shard].remove(key);
        if removed.is_some() {
            state.dirty[shard] = true;
            state.removed.insert(key.to_string());
        }
        removed
    }

    /// Total number of documents.
    pub fn len(&self) -> usize {
        self.state.read().doc_count()
    }

    /// Whether the store holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All keys, sorted.
    pub fn keys(&self) -> Vec<String> {
        let state = self.state.read();
        let mut keys: Vec<String> = state
            .shards
            .iter()
            .flat_map(|s| s.keys().cloned())
            .collect();
        keys.sort();
        keys
    }

    /// Visit every document in shard order (keys ordered within each
    /// shard).
    pub fn for_each(&self, mut f: impl FnMut(&Document)) {
        let state = self.state.read();
        for shard in &state.shards {
            for doc in shard.values() {
                f(doc);
            }
        }
    }

    /// Shards mutated since the last save (sorted).
    pub fn dirty_shards(&self) -> Vec<u8> {
        let state = self.state.read();
        (0..SHARD_COUNT)
            .filter(|&s| state.dirty[s])
            .map(|s| s as u8)
            .collect()
    }

    /// Write mutated shards back to disk. Only data files holding a
    /// dirty shard are rewritten; a save with nothing dirty writes
    /// nothing (once the manifest exists). No-op for in-memory stores.
    ///
    /// The save is **lock-aware**: it runs under the directory's
    /// advisory lock, adopts the freshest on-disk layout, and merges
    /// back any documents a concurrent process added to the files it is
    /// about to rewrite — so several processes sharing one cache
    /// directory never lose each other's results (on a key collision
    /// this handle's document wins).
    ///
    /// Known asymmetry: the merge is insert-only. A document a *peer*
    /// process removed while this handle still holds it in memory is
    /// written back by this handle's next save of that shard —
    /// deletion-vs-foreign-insert is undecidable from file contents,
    /// and the tombstone set only covers this handle's own removals.
    /// For the campaign result cache (insert-only, deterministic
    /// values) resurrection is harmless; a workload that deletes
    /// concurrently across processes would need per-document
    /// versioning this store does not implement.
    pub fn save(&self) -> Result<SaveStats, StoreError> {
        let mut state = self.state.write();
        let Some(dir) = &self.dir else {
            state.dirty.iter_mut().for_each(|d| *d = false);
            return Ok(SaveStats::default());
        };
        let any_dirty = state.dirty.iter().any(|&d| d);
        if !any_dirty && state.manifest_synced {
            return Ok(SaveStats::default());
        }
        let shard_root = dir.join(SHARD_DIR);
        fs::create_dir_all(&shard_root)?;
        let _lock = self.lock_dir(dir)?;

        let State {
            shards,
            dirty,
            removed,
            groups,
            manifest_synced,
        } = &mut *state;

        // Another process may have saved or compacted since this handle
        // last synced: its manifest is the layout ground truth now. Its
        // per-file doc counts are kept for the files this save leaves
        // untouched (this handle may never have loaded them, so its
        // in-memory counts would understate them).
        let mut disk_doc_counts = BTreeMap::new();
        if let Some((disk_groups, counts)) = read_disk_manifest(dir)? {
            *groups = disk_groups;
            disk_doc_counts = counts;
        }
        // Merge foreign documents out of every data file this save will
        // rewrite. Missing keys are other processes' fresh results;
        // keys we also hold stay ours (results are deterministic, so
        // the bodies agree anyway).
        let mut reconciled = 0u64;
        for group in groups.iter() {
            if !group.shards.iter().any(|&s| dirty[s as usize]) {
                continue;
            }
            let path = shard_root.join(&group.file);
            if !path.exists() {
                continue;
            }
            let docs: Vec<Document> = serde_json::from_str(&fs::read_to_string(&path)?)?;
            for doc in docs {
                doc.check_limit(self.doc_limit)?;
                let shard = shard_of(&doc.id);
                if !group.shards.contains(&shard) {
                    return Err(StoreError::Corrupt(format!(
                        "document {:?} routes to shard {shard:02x}, outside its data file {:?}",
                        doc.id, group.file
                    )));
                }
                let bucket = &mut shards[shard as usize];
                if !bucket.contains_key(&doc.id) && !removed.contains(&doc.id) {
                    bucket.insert(doc.id.clone(), doc);
                    reconciled += 1;
                }
            }
        }
        if reconciled > 0 {
            self.reconciled_docs.add(reconciled);
        }

        // Plan the post-save layout without touching `groups`, so an
        // I/O error part-way through leaves the in-memory layout and
        // dirty set intact and a retry repeats the whole save. Dirty
        // shards not yet covered by the layout get their own fresh
        // singleton file.
        let mut covered = vec![false; SHARD_COUNT];
        for g in groups.iter() {
            for &s in &g.shards {
                covered[s as usize] = true;
            }
        }
        let mut planned = groups.clone();
        for s in 0..SHARD_COUNT {
            if dirty[s] && !covered[s] && !shards[s].is_empty() {
                planned.push(Group::singleton(s as u8));
            }
        }

        let mut stats = SaveStats::default();
        let mut kept = Vec::with_capacity(planned.len());
        for group in planned {
            let is_dirty = group.shards.iter().any(|&s| dirty[s as usize]);
            if !is_dirty {
                kept.push(group);
                continue;
            }
            let docs: Vec<&Document> = group
                .shards
                .iter()
                .flat_map(|&s| shards[s as usize].values())
                .collect();
            let path = shard_root.join(&group.file);
            if docs.is_empty() {
                // Every document of this file is gone: tombstone it.
                if path.exists() {
                    fs::remove_file(&path)?;
                    stats.data_files_removed += 1;
                }
            } else {
                write_atomic(&path, &serde_json::to_string(&docs)?)?;
                stats.data_files_written += 1;
                stats.docs_written += docs.len();
                kept.push(group);
            }
        }

        let manifest = Manifest {
            format: FORMAT_VERSION,
            engine: self.engine.clone(),
            shard_count: SHARD_COUNT as u32,
            groups: kept
                .iter()
                .map(|g| {
                    let rewritten = g.shards.iter().any(|&s| dirty[s as usize]);
                    let docs = if rewritten {
                        // This save just wrote the file from memory.
                        g.shards
                            .iter()
                            .map(|&s| shards[s as usize].len() as u64)
                            .sum()
                    } else {
                        // Untouched file: trust the count of whoever
                        // wrote it (this handle may never have loaded
                        // it).
                        disk_doc_counts.get(&g.file).copied().unwrap_or_else(|| {
                            g.shards
                                .iter()
                                .map(|&s| shards[s as usize].len() as u64)
                                .sum()
                        })
                    };
                    GroupEntry {
                        file: g.file.clone(),
                        shards: g.shards.iter().map(|&s| s as u32).collect(),
                        docs,
                    }
                })
                .collect(),
        };
        write_atomic(&dir.join(MANIFEST_FILE), &serde_json::to_string(&manifest)?)?;
        // Commit: every write landed, so the new layout becomes real.
        stats.manifest_written = true;
        *groups = kept;
        *manifest_synced = true;
        dirty.iter_mut().for_each(|d| *d = false);
        removed.clear();
        Ok(stats)
    }

    /// Compact the on-disk layout with [`DEFAULT_COMPACT_TARGET`].
    pub fn compact(&self) -> Result<CompactStats, StoreError> {
        self.compact_with_target(DEFAULT_COMPACT_TARGET)
    }

    /// Rewrite the layout so neighbouring shards merge into data files
    /// of at least `target_docs` documents, dropping tombstoned (empty)
    /// shards and any stale files. Compaction is idempotent: a second
    /// pass over a compacted store rewrites nothing. In-memory stores
    /// have no layout and return a no-op.
    pub fn compact_with_target(&self, target_docs: usize) -> Result<CompactStats, StoreError> {
        let target_docs = target_docs.max(1);
        let mut state = self.state.write();
        let Some(dir) = &self.dir else {
            return Ok(CompactStats {
                files_before: 0,
                files_after: 0,
                docs: state.doc_count(),
                changed: false,
            });
        };
        fs::create_dir_all(dir)?;
        let _lock = self.lock_dir(dir)?;

        // Compaction rewrites the whole layout from memory, so first
        // fold in *everything* another process may have written: adopt
        // the on-disk layout and merge every document we don't hold.
        if let Some((disk_groups, _doc_counts)) = read_disk_manifest(dir)? {
            let shard_root = dir.join(SHARD_DIR);
            let mut reconciled = 0u64;
            for group in &disk_groups {
                let path = shard_root.join(&group.file);
                if !path.exists() {
                    continue;
                }
                let docs: Vec<Document> = serde_json::from_str(&fs::read_to_string(&path)?)?;
                for doc in docs {
                    doc.check_limit(self.doc_limit)?;
                    let key_removed = state.removed.contains(&doc.id);
                    let bucket = &mut state.shards[shard_of(&doc.id) as usize];
                    if !bucket.contains_key(&doc.id) && !key_removed {
                        bucket.insert(doc.id.clone(), doc);
                        reconciled += 1;
                    }
                }
            }
            if reconciled > 0 {
                self.reconciled_docs.add(reconciled);
            }
            state.groups = disk_groups;
        }

        // The ideal grouping is a pure function of shard occupancy, so
        // re-running compaction reproduces it exactly (idempotence).
        let mut new_groups: Vec<Group> = Vec::new();
        let mut run: Vec<u8> = Vec::new();
        let mut run_docs = 0usize;
        for s in 0..SHARD_COUNT {
            let n = state.shards[s].len();
            if n == 0 {
                continue;
            }
            run.push(s as u8);
            run_docs += n;
            if run_docs >= target_docs {
                new_groups.push(Group::spanning(std::mem::take(&mut run)));
                run_docs = 0;
            }
        }
        if !run.is_empty() {
            new_groups.push(Group::spanning(run));
        }

        let docs = state.doc_count();
        let any_dirty = state.dirty.iter().any(|&d| d);
        let files_before = state.groups.len();
        let shard_root = dir.join(SHARD_DIR);
        if new_groups == state.groups && !any_dirty && state.manifest_synced {
            // Layout already compact; still sweep any stale files an
            // interrupted earlier pass may have left behind.
            sweep_stale_files(&shard_root, &state.groups)?;
            return Ok(CompactStats {
                files_before,
                files_after: files_before,
                docs,
                changed: false,
            });
        }

        fs::create_dir_all(&shard_root)?;
        for group in &new_groups {
            let docs: Vec<&Document> = group
                .shards
                .iter()
                .flat_map(|&s| state.shards[s as usize].values())
                .collect();
            write_atomic(
                &shard_root.join(&group.file),
                &serde_json::to_string(&docs)?,
            )?;
        }
        let manifest = Manifest {
            format: FORMAT_VERSION,
            engine: self.engine.clone(),
            shard_count: SHARD_COUNT as u32,
            groups: new_groups
                .iter()
                .map(|g| GroupEntry {
                    file: g.file.clone(),
                    shards: g.shards.iter().map(|&s| s as u32).collect(),
                    docs: g
                        .shards
                        .iter()
                        .map(|&s| state.shards[s as usize].len() as u64)
                        .sum(),
                })
                .collect(),
        };
        // The manifest write is the commit point: only after it lands
        // are files of the old layout removed, so a crash in between
        // leaves a manifest whose every referenced file exists (the
        // orphans are invisible to `open` and swept by a later pass).
        write_atomic(&dir.join(MANIFEST_FILE), &serde_json::to_string(&manifest)?)?;
        let files_after = new_groups.len();
        state.groups = new_groups;
        state.manifest_synced = true;
        state.dirty.iter_mut().for_each(|d| *d = false);
        state.removed.clear();
        sweep_stale_files(&shard_root, &state.groups)?;
        Ok(CompactStats {
            files_before,
            files_after,
            docs,
            changed: true,
        })
    }

    /// Current store summary.
    pub fn stats(&self) -> ShardStats {
        let state = self.state.read();
        let bytes_on_disk = self
            .dir
            .as_ref()
            .map(|dir| {
                let mut bytes = file_len(&dir.join(MANIFEST_FILE));
                for g in &state.groups {
                    bytes += file_len(&dir.join(SHARD_DIR).join(&g.file));
                }
                bytes
            })
            .unwrap_or(0);
        ShardStats {
            docs: state.doc_count(),
            occupied_shards: state.shards.iter().filter(|s| !s.is_empty()).count(),
            data_files: state.groups.len(),
            dirty_shards: state.dirty.iter().filter(|&&d| d).count(),
            bytes_on_disk,
            engine: self.engine.clone(),
            lock_acquisitions: self.lock_acquisitions.get(),
            lock_contention: self.lock_contention.get(),
            reconciled_docs: self.reconciled_docs.get(),
        }
    }
}

fn file_len(path: &Path) -> u64 {
    fs::metadata(path).map(|m| m.len()).unwrap_or(0)
}

/// Remove every file in the shard directory the current layout does
/// not reference (leftovers from interrupted compactions and `.tmp`
/// residue from interrupted writes).
fn sweep_stale_files(shard_root: &Path, groups: &[Group]) -> Result<(), StoreError> {
    if !shard_root.exists() {
        return Ok(());
    }
    for entry in fs::read_dir(shard_root)? {
        let path = entry?.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if !groups.iter().any(|g| g.file == name) {
            fs::remove_file(&path)?;
        }
    }
    Ok(())
}

/// Write via a temp file + rename so readers never observe a
/// half-written file and a crash cannot truncate existing data.
fn write_atomic(path: &Path, contents: &str) -> Result<(), StoreError> {
    let tmp = path.with_extension("json.tmp");
    fs::write(&tmp, contents)?;
    fs::rename(&tmp, path)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;
    use std::time::SystemTime;

    fn doc(id: &str, n: i64) -> Document {
        Document {
            id: id.into(),
            body: json!({"n": n}),
        }
    }

    /// A 16-hex-digit key landing in shard `shard` (fingerprint-like).
    fn hexkey(shard: u8, tail: u64) -> String {
        format!("{shard:02x}{tail:014x}")
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("synapse-sharded-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn routing_uses_hex_prefix_and_is_pinned() {
        assert_eq!(shard_of("00aabbccddeeff11"), 0x00);
        assert_eq!(shard_of("ff00000000000000"), 0xff);
        assert_eq!(shard_of("3e7f000000000000"), 0x3e);
        assert_eq!(shard_of("AB00"), 0xab, "uppercase hex accepted");
        // Non-hex keys fall back to FNV — pinned so persisted layouts
        // never silently re-route.
        assert_eq!(shard_of("synapse"), 0x18);
        assert_eq!(shard_of(""), 0x25);
        assert_eq!(shard_of("x"), shard_of("x"));
    }

    #[test]
    fn upsert_get_remove_and_dirty_tracking() {
        let db = ShardedDb::in_memory();
        assert!(db.is_empty());
        db.upsert(doc(&hexkey(0x11, 1), 1)).unwrap();
        db.upsert(doc(&hexkey(0x22, 2), 2)).unwrap();
        assert_eq!(db.len(), 2);
        assert_eq!(db.dirty_shards(), vec![0x11, 0x22]);
        assert_eq!(db.get(&hexkey(0x11, 1)).unwrap().body["n"], 1);
        assert!(db.get(&hexkey(0x33, 3)).is_none());
        assert!(db.remove(&hexkey(0x11, 1)).is_some());
        assert!(db.remove(&hexkey(0x11, 1)).is_none());
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn doc_limit_enforced() {
        let db = ShardedDb::in_memory_with_limit(16);
        let big = Document {
            id: hexkey(0, 0),
            body: json!({"p": "x".repeat(64)}),
        };
        assert!(matches!(
            db.upsert(big),
            Err(StoreError::DocumentTooLarge { .. })
        ));
    }

    #[test]
    fn save_open_roundtrip_and_layout() {
        let dir = tmpdir("roundtrip");
        let db = ShardedDb::open(&dir, DEFAULT_DOC_LIMIT, "test-engine").unwrap();
        for s in [0x00u8, 0x7f, 0xff] {
            for t in 0..3 {
                db.upsert(doc(&hexkey(s, t), t as i64)).unwrap();
            }
        }
        let stats = db.save().unwrap();
        assert_eq!(stats.data_files_written, 3);
        assert_eq!(stats.docs_written, 9);
        assert!(stats.manifest_written);
        assert!(dir.join(MANIFEST_FILE).exists());
        assert!(dir.join(SHARD_DIR).join("7f.json").exists());

        let back = ShardedDb::open(&dir, DEFAULT_DOC_LIMIT, "test-engine").unwrap();
        assert_eq!(back.len(), 9);
        assert_eq!(back.get(&hexkey(0x7f, 2)).unwrap().body["n"], 2);
        assert!(back.dirty_shards().is_empty());
        assert_eq!(back.stats().engine, "test-engine");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_rewrites_only_dirty_shard_files() {
        let dir = tmpdir("dirty-only");
        let db = ShardedDb::open(&dir, DEFAULT_DOC_LIMIT, "e").unwrap();
        // 10k docs spread over all 256 shards: the monolithic-store
        // pathology this type exists to fix.
        for t in 0..10_000u64 {
            db.upsert(doc(&hexkey((t % 256) as u8, t), t as i64))
                .unwrap();
        }
        let first = db.save().unwrap();
        assert_eq!(first.data_files_written, 256);

        let mtime = |name: &str| -> SystemTime {
            fs::metadata(dir.join(SHARD_DIR).join(name))
                .unwrap()
                .modified()
                .unwrap()
        };
        let before: Vec<(String, SystemTime)> = (0..256)
            .map(|s| {
                let name = format!("{s:02x}.json");
                let t = mtime(&name);
                (name, t)
            })
            .collect();
        // Let the filesystem clock tick so an unwanted rewrite would
        // be visible in mtimes, not hidden by timestamp granularity.
        std::thread::sleep(std::time::Duration::from_millis(25));

        // One new point: exactly one data file (+ manifest) rewrites.
        db.upsert(doc(&hexkey(0x42, 99_999), -1)).unwrap();
        assert_eq!(db.dirty_shards(), vec![0x42]);
        let second = db.save().unwrap();
        assert_eq!(second.data_files_written, 1, "{second:?}");
        assert!(second.manifest_written);
        let rewritten: Vec<&str> = before
            .iter()
            .filter(|(name, t)| mtime(name) != *t)
            .map(|(name, _)| name.as_str())
            .collect();
        assert_eq!(rewritten, vec!["42.json"], "only the dirty shard file");

        // Nothing dirty ⇒ nothing written at all.
        let third = db.save().unwrap();
        assert_eq!(third, SaveStats::default());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn removing_all_docs_of_a_shard_tombstones_its_file() {
        let dir = tmpdir("tombstone");
        let db = ShardedDb::open(&dir, DEFAULT_DOC_LIMIT, "e").unwrap();
        db.upsert(doc(&hexkey(0x10, 1), 1)).unwrap();
        db.upsert(doc(&hexkey(0x20, 2), 2)).unwrap();
        db.save().unwrap();
        assert!(dir.join(SHARD_DIR).join("10.json").exists());
        db.remove(&hexkey(0x10, 1)).unwrap();
        let stats = db.save().unwrap();
        assert_eq!(stats.data_files_removed, 1);
        assert!(!dir.join(SHARD_DIR).join("10.json").exists());
        let back = ShardedDb::open(&dir, DEFAULT_DOC_LIMIT, "e").unwrap();
        assert_eq!(back.len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_merges_small_shards_and_is_idempotent() {
        let dir = tmpdir("compact");
        let db = ShardedDb::open(&dir, DEFAULT_DOC_LIMIT, "e").unwrap();
        for s in 0..32u8 {
            for t in 0..4 {
                db.upsert(doc(&hexkey(s, t), t as i64)).unwrap();
            }
        }
        db.save().unwrap();
        assert_eq!(db.stats().data_files, 32);

        let pass = db.compact_with_target(40).unwrap();
        assert!(pass.changed);
        assert_eq!(pass.files_before, 32);
        // 32 shards × 4 docs at a 40-doc target ⇒ 10-shard groups.
        assert_eq!(pass.files_after, 4);
        assert!(dir.join(SHARD_DIR).join("00-09.json").exists());
        assert!(!dir.join(SHARD_DIR).join("00.json").exists());

        let again = db.compact_with_target(40).unwrap();
        assert!(!again.changed, "{again:?}");
        assert_eq!(again.files_after, 4);

        // Contents survive the rewrite, including through a reload.
        let back = ShardedDb::open(&dir, DEFAULT_DOC_LIMIT, "e").unwrap();
        assert_eq!(back.len(), 32 * 4);
        assert_eq!(back.stats().data_files, 4);
        assert_eq!(back.get(&hexkey(0x1f, 3)).unwrap().body["n"], 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn writes_into_a_compacted_group_rewrite_only_that_file() {
        let dir = tmpdir("compact-dirty");
        let db = ShardedDb::open(&dir, DEFAULT_DOC_LIMIT, "e").unwrap();
        for s in 0..16u8 {
            db.upsert(doc(&hexkey(s, 0), 0)).unwrap();
        }
        db.save().unwrap();
        db.compact_with_target(8).unwrap();
        assert_eq!(db.stats().data_files, 2);

        db.upsert(doc(&hexkey(0x03, 9), 9)).unwrap();
        let stats = db.save().unwrap();
        assert_eq!(stats.data_files_written, 1);
        assert_eq!(stats.docs_written, 9, "whole 8-shard group rewritten");

        // A shard outside any group gets a fresh singleton file.
        db.upsert(doc(&hexkey(0xaa, 1), 1)).unwrap();
        let stats = db.save().unwrap();
        assert_eq!(stats.data_files_written, 1);
        assert!(dir.join(SHARD_DIR).join("aa.json").exists());
        let back = ShardedDb::open(&dir, DEFAULT_DOC_LIMIT, "e").unwrap();
        assert_eq!(back.len(), 18);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn parallel_open_matches_serial_open() {
        let dir = tmpdir("parallel");
        let db = ShardedDb::open(&dir, DEFAULT_DOC_LIMIT, "e").unwrap();
        for t in 0..2_000u64 {
            db.upsert(doc(&hexkey((t % 64) as u8, t), t as i64))
                .unwrap();
        }
        db.save().unwrap();
        let serial = ShardedDb::open_with_workers(&dir, DEFAULT_DOC_LIMIT, "e", 1).unwrap();
        let parallel = ShardedDb::open_with_workers(&dir, DEFAULT_DOC_LIMIT, "e", 8).unwrap();
        let auto = ShardedDb::open_with_workers(&dir, DEFAULT_DOC_LIMIT, "e", 0).unwrap();
        assert_eq!(serial.len(), 2_000);
        assert_eq!(serial.keys(), parallel.keys());
        assert_eq!(serial.keys(), auto.keys());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_missing_dir_yields_empty_store() {
        let db = ShardedDb::open("/nonexistent/synapse-sharded", DEFAULT_DOC_LIMIT, "e").unwrap();
        assert!(db.is_empty());
        assert_eq!(db.stats().data_files, 0);
    }

    #[test]
    fn corrupt_manifests_are_rejected() {
        let dir = tmpdir("corrupt");
        fs::create_dir_all(&dir).unwrap();
        fs::write(
            dir.join(MANIFEST_FILE),
            r#"{"format":99,"engine":"e","shard_count":256,"groups":[]}"#,
        )
        .unwrap();
        assert!(matches!(
            ShardedDb::open(&dir, DEFAULT_DOC_LIMIT, "e"),
            Err(StoreError::Corrupt(_))
        ));
        fs::write(
            dir.join(MANIFEST_FILE),
            r#"{"format":1,"engine":"e","shard_count":256,"groups":[{"file":"a.json","shards":[3],"docs":0},{"file":"b.json","shards":[3],"docs":0}]}"#,
        )
        .unwrap();
        assert!(matches!(
            ShardedDb::open(&dir, DEFAULT_DOC_LIMIT, "e"),
            Err(StoreError::Corrupt(_))
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_upserts_from_threads() {
        let db = std::sync::Arc::new(ShardedDb::in_memory());
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let db = db.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..100u64 {
                    db.upsert(doc(&hexkey((i % 256) as u8, t * 1000 + i), i as i64))
                        .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(db.len(), 400);
    }

    #[test]
    fn concurrent_handles_sharing_a_dir_never_lose_each_others_saves() {
        // Two handles on one directory stand in for two serve
        // processes sharing a cluster cache dir. Both mutate the SAME
        // shard before either saves — the last-writer-wins hazard the
        // lock-aware save exists to close.
        let dir = tmpdir("shared");
        let a = ShardedDb::open(&dir, DEFAULT_DOC_LIMIT, "e").unwrap();
        let b = ShardedDb::open(&dir, DEFAULT_DOC_LIMIT, "e").unwrap();
        a.upsert(doc(&hexkey(0x42, 1), 1)).unwrap();
        b.upsert(doc(&hexkey(0x42, 2), 2)).unwrap();
        a.save().unwrap();
        // b's save rewrites 42.json, but first merges a's document back
        // out of it.
        b.save().unwrap();
        assert_eq!(b.len(), 2, "b reconciled a's doc during its save");
        assert_eq!(b.stats().reconciled_docs, 1);
        assert!(b.stats().lock_acquisitions >= 1);
        let back = ShardedDb::open(&dir, DEFAULT_DOC_LIMIT, "e").unwrap();
        assert_eq!(back.len(), 2, "both processes' documents on disk");
        assert!(back.get(&hexkey(0x42, 1)).is_some());
        assert!(back.get(&hexkey(0x42, 2)).is_some());

        // a saves a disjoint shard: it must adopt b's manifest (which
        // now owns 42.json) instead of clobbering it with its stale
        // layout.
        a.upsert(doc(&hexkey(0x10, 3), 3)).unwrap();
        a.save().unwrap();
        let back = ShardedDb::open(&dir, DEFAULT_DOC_LIMIT, "e").unwrap();
        assert_eq!(back.len(), 3);

        // Compaction from a stale handle folds in everything first.
        b.compact_with_target(2).unwrap();
        assert_eq!(b.len(), 3, "compact reconciled the whole store");
        let back = ShardedDb::open(&dir, DEFAULT_DOC_LIMIT, "e").unwrap();
        assert_eq!(back.len(), 3);
        assert!(back.get(&hexkey(0x10, 3)).is_some());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stats_reflect_store_shape() {
        let dir = tmpdir("stats");
        let db = ShardedDb::open(&dir, DEFAULT_DOC_LIMIT, "engine-tag").unwrap();
        db.upsert(doc(&hexkey(0x01, 1), 1)).unwrap();
        db.upsert(doc(&hexkey(0x01, 2), 2)).unwrap();
        db.upsert(doc(&hexkey(0x02, 3), 3)).unwrap();
        let s = db.stats();
        assert_eq!(s.docs, 3);
        assert_eq!(s.occupied_shards, 2);
        assert_eq!(s.dirty_shards, 2);
        assert_eq!(s.data_files, 0, "not saved yet");
        db.save().unwrap();
        let s = db.stats();
        assert_eq!(s.data_files, 2);
        assert_eq!(s.dirty_shards, 0);
        assert!(s.bytes_on_disk > 0);
        assert_eq!(s.engine, "engine-tag");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reads_fold_in_peer_saves_without_a_local_save() {
        let dir = tmpdir("reload");
        let a = ShardedDb::open(&dir, DEFAULT_DOC_LIMIT, "e").unwrap();
        let b = ShardedDb::open(&dir, DEFAULT_DOC_LIMIT, "e").unwrap();

        // a saves; b sees the document at *read* time, no reopen.
        a.upsert(doc(&hexkey(0x42, 1), 1)).unwrap();
        a.save().unwrap();
        let found = b.get(&hexkey(0x42, 1)).expect("miss folds in peer save");
        assert_eq!(found.body["n"], 1);
        assert_eq!(b.len(), 1);
        assert_eq!(b.stats().reconciled_docs, 1);

        // The fold is not a local mutation: b has nothing to save.
        assert_eq!(b.stats().dirty_shards, 0);

        // Misses on untouched shards stay misses and don't refold.
        assert!(b.get(&hexkey(0x42, 99)).is_none());
        assert!(b.get(&hexkey(0x07, 1)).is_none());
        assert_eq!(
            b.stats().reconciled_docs,
            1,
            "no rereads while the manifest is unchanged"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reload_respects_local_tombstones_and_mutations() {
        let dir = tmpdir("reload-tombstone");
        let k1 = hexkey(0x11, 1);
        let k2 = hexkey(0x11, 2);
        let k3 = hexkey(0x11, 3);
        let a = ShardedDb::open(&dir, DEFAULT_DOC_LIMIT, "e").unwrap();
        a.upsert(doc(&k1, 1)).unwrap();
        a.upsert(doc(&k2, 1)).unwrap();
        a.save().unwrap();

        let b = ShardedDb::open(&dir, DEFAULT_DOC_LIMIT, "e").unwrap();
        b.remove(&k1).unwrap();
        b.upsert(doc(&k2, 7)).unwrap();

        // a rewrites the shard file (still carrying k1 and its stale
        // k2); a k3 miss on b folds that file back in.
        a.upsert(doc(&k3, 1)).unwrap();
        a.save().unwrap();
        assert_eq!(b.get(&k3).expect("fresh peer doc folds in").body["n"], 1);
        assert!(b.get(&k1).is_none(), "local tombstone wins over the fold");
        assert_eq!(
            b.get(&k2).unwrap().body["n"],
            7,
            "local mutation wins over the fold"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn in_memory_stores_skip_the_reload_path() {
        let db = ShardedDb::in_memory();
        assert!(db.get(&hexkey(0x01, 1)).is_none());
        assert_eq!(db.stats().reconciled_docs, 0);
    }
}
