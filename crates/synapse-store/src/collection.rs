//! An in-memory collection of documents with insert/find/remove.

use std::collections::BTreeMap;

use serde_json::Value;

use crate::document::{Document, DEFAULT_DOC_LIMIT};
use crate::error::StoreError;
use crate::query::Query;

/// A named set of documents, ordered by id, enforcing the per-document
/// size limit on insert (like a MongoDB collection).
#[derive(Debug, Clone)]
pub struct Collection {
    name: String,
    doc_limit: usize,
    docs: BTreeMap<String, Document>,
}

impl Collection {
    /// New empty collection with the default 16 MB document limit.
    pub fn new(name: impl Into<String>) -> Self {
        Self::with_limit(name, DEFAULT_DOC_LIMIT)
    }

    /// New empty collection with a custom document limit (tests and
    /// the DB-truncation ablation shrink it).
    pub fn with_limit(name: impl Into<String>, doc_limit: usize) -> Self {
        Collection {
            name: name.into(),
            doc_limit,
            docs: BTreeMap::new(),
        }
    }

    /// Collection name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Configured per-document size limit in bytes.
    pub fn doc_limit(&self) -> usize {
        self.doc_limit
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// Whether the collection is empty.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Insert a new document. Fails on duplicate id or an oversized
    /// body.
    pub fn insert(&mut self, doc: Document) -> Result<(), StoreError> {
        doc.check_limit(self.doc_limit)?;
        if self.docs.contains_key(&doc.id) {
            return Err(StoreError::DuplicateId(doc.id));
        }
        self.docs.insert(doc.id.clone(), doc);
        Ok(())
    }

    /// Insert or replace a document (upsert).
    pub fn upsert(&mut self, doc: Document) -> Result<(), StoreError> {
        doc.check_limit(self.doc_limit)?;
        self.docs.insert(doc.id.clone(), doc);
        Ok(())
    }

    /// Fetch by id.
    pub fn get(&self, id: &str) -> Option<&Document> {
        self.docs.get(id)
    }

    /// Remove by id, returning the removed document.
    pub fn remove(&mut self, id: &str) -> Option<Document> {
        self.docs.remove(id)
    }

    /// All documents whose body matches the query, in id order.
    pub fn find(&self, query: &Query) -> Vec<&Document> {
        self.docs
            .values()
            .filter(|d| query.matches(&d.body))
            .collect()
    }

    /// First match, if any.
    pub fn find_one(&self, query: &Query) -> Option<&Document> {
        self.docs.values().find(|d| query.matches(&d.body))
    }

    /// Number of documents matching the query.
    pub fn count(&self, query: &Query) -> usize {
        self.docs
            .values()
            .filter(|d| query.matches(&d.body))
            .count()
    }

    /// Iterate all documents in id order.
    pub fn iter(&self) -> impl Iterator<Item = &Document> {
        self.docs.values()
    }

    /// Serialize the whole collection to a JSON array (persistence
    /// format used by [`crate::DocumentDb`]).
    pub fn to_json(&self) -> Result<String, StoreError> {
        let all: Vec<&Document> = self.docs.values().collect();
        Ok(serde_json::to_string(&all)?)
    }

    /// Rebuild a collection from its JSON array form.
    pub fn from_json(
        name: impl Into<String>,
        doc_limit: usize,
        json: &str,
    ) -> Result<Self, StoreError> {
        let docs: Vec<Document> = serde_json::from_str(json)?;
        let mut c = Collection::with_limit(name, doc_limit);
        for d in docs {
            // Persisted documents were size-checked on insert; re-check
            // anyway so a corrupted/hand-edited file cannot smuggle an
            // oversized document in.
            c.upsert(d)?;
        }
        Ok(c)
    }

    /// Document bodies matching a query, decoded into `T`.
    pub fn find_decoded<T: for<'de> serde::Deserialize<'de>>(
        &self,
        query: &Query,
    ) -> Result<Vec<T>, StoreError> {
        self.find(query).into_iter().map(Document::decode).collect()
    }

    /// Raw access to all bodies (used by statistics over profile sets).
    pub fn bodies(&self) -> impl Iterator<Item = &Value> {
        self.docs.values().map(|d| &d.body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn doc(id: &str, n: i64) -> Document {
        Document {
            id: id.into(),
            body: json!({"n": n, "kind": "test"}),
        }
    }

    #[test]
    fn insert_get_remove() {
        let mut c = Collection::new("profiles");
        c.insert(doc("a", 1)).unwrap();
        c.insert(doc("b", 2)).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.get("a").unwrap().body["n"], 1);
        assert!(c.get("zz").is_none());
        let removed = c.remove("a").unwrap();
        assert_eq!(removed.id, "a");
        assert_eq!(c.len(), 1);
        assert!(c.remove("a").is_none());
    }

    #[test]
    fn duplicate_ids_rejected_but_upsert_replaces() {
        let mut c = Collection::new("c");
        c.insert(doc("a", 1)).unwrap();
        assert!(matches!(
            c.insert(doc("a", 2)),
            Err(StoreError::DuplicateId(_))
        ));
        c.upsert(doc("a", 3)).unwrap();
        assert_eq!(c.get("a").unwrap().body["n"], 3);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn size_limit_enforced_on_insert_and_upsert() {
        let mut c = Collection::with_limit("c", 32);
        let big = Document {
            id: "big".into(),
            body: json!({"payload": "x".repeat(100)}),
        };
        assert!(matches!(
            c.insert(big.clone()),
            Err(StoreError::DocumentTooLarge { .. })
        ));
        assert!(matches!(
            c.upsert(big),
            Err(StoreError::DocumentTooLarge { .. })
        ));
        assert!(c.is_empty());
    }

    #[test]
    fn find_and_count() {
        let mut c = Collection::new("c");
        for i in 0..10 {
            c.insert(doc(&format!("d{i}"), i % 3)).unwrap();
        }
        let q = Query::all().field("n", 0);
        assert_eq!(c.count(&q), 4); // 0,3,6,9
        assert_eq!(c.find(&q).len(), 4);
        assert!(c.find_one(&q).is_some());
        assert_eq!(c.count(&Query::all()), 10);
        assert_eq!(c.count(&Query::all().field("n", 99)), 0);
        assert!(c.find_one(&Query::all().field("n", 99)).is_none());
    }

    #[test]
    fn results_are_id_ordered() {
        let mut c = Collection::new("c");
        for id in ["c", "a", "b"] {
            c.insert(doc(id, 0)).unwrap();
        }
        let ids: Vec<&str> = c
            .find(&Query::all())
            .iter()
            .map(|d| d.id.as_str())
            .collect();
        assert_eq!(ids, vec!["a", "b", "c"]);
    }

    #[test]
    fn json_roundtrip_preserves_collection() {
        let mut c = Collection::with_limit("c", 1024);
        for i in 0..5 {
            c.insert(doc(&format!("d{i}"), i)).unwrap();
        }
        let json = c.to_json().unwrap();
        let back = Collection::from_json("c", 1024, &json).unwrap();
        assert_eq!(back.len(), 5);
        for i in 0..5 {
            assert_eq!(back.get(&format!("d{i}")).unwrap().body["n"], i);
        }
    }

    #[test]
    fn from_json_rechecks_limits() {
        let docs = vec![Document {
            id: "big".into(),
            body: json!({"payload": "x".repeat(100)}),
        }];
        let json = serde_json::to_string(&docs).unwrap();
        assert!(Collection::from_json("c", 16, &json).is_err());
    }

    #[test]
    fn find_decoded() {
        #[derive(serde::Deserialize)]
        struct T {
            n: i64,
        }
        let mut c = Collection::new("c");
        c.insert(doc("a", 7)).unwrap();
        let ts: Vec<T> = c.find_decoded(&Query::all()).unwrap();
        assert_eq!(ts.len(), 1);
        assert_eq!(ts[0].n, 7);
    }
}
