//! `/proc/<pid>/io` parsing: cumulative I/O counters.

use std::fs;

use crate::error::ProcError;

/// Cumulative I/O counters of a process (`/proc/<pid>/io`).
///
/// `rchar`/`wchar` count bytes through `read(2)`-like syscalls
/// (including cache hits); `read_bytes`/`write_bytes` count actual
/// storage traffic. The Synapse disk watcher samples these and
/// differences consecutive readings into per-interval deltas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PidIo {
    /// Bytes passed through read-like syscalls.
    pub rchar: u64,
    /// Bytes passed through write-like syscalls.
    pub wchar: u64,
    /// Number of read syscalls.
    pub syscr: u64,
    /// Number of write syscalls.
    pub syscw: u64,
    /// Bytes actually fetched from the storage layer.
    pub read_bytes: u64,
    /// Bytes actually sent to the storage layer.
    pub write_bytes: u64,
}

impl PidIo {
    /// Counter-wise saturating difference (`self - earlier`), used to
    /// convert cumulative readings into per-sample deltas. Saturation
    /// guards against counter resets (e.g. after exec).
    pub fn delta_since(&self, earlier: &PidIo) -> PidIo {
        PidIo {
            rchar: self.rchar.saturating_sub(earlier.rchar),
            wchar: self.wchar.saturating_sub(earlier.wchar),
            syscr: self.syscr.saturating_sub(earlier.syscr),
            syscw: self.syscw.saturating_sub(earlier.syscw),
            read_bytes: self.read_bytes.saturating_sub(earlier.read_bytes),
            write_bytes: self.write_bytes.saturating_sub(earlier.write_bytes),
        }
    }
}

/// Parse the content of a `/proc/<pid>/io` file.
pub fn parse_pid_io(content: &str) -> Result<PidIo, ProcError> {
    let mut out = PidIo::default();
    for line in content.lines() {
        let Some((key, value)) = line.split_once(':') else {
            continue;
        };
        let parse = |v: &str| -> Result<u64, ProcError> {
            v.trim().parse().map_err(|e| ProcError::Parse {
                what: "pid/io",
                reason: format!("{key}: {e}"),
            })
        };
        match key.trim() {
            "rchar" => out.rchar = parse(value)?,
            "wchar" => out.wchar = parse(value)?,
            "syscr" => out.syscr = parse(value)?,
            "syscw" => out.syscw = parse(value)?,
            "read_bytes" => out.read_bytes = parse(value)?,
            "write_bytes" => out.write_bytes = parse(value)?,
            _ => {}
        }
    }
    Ok(out)
}

/// Read and parse `/proc/<pid>/io` for a live process.
///
/// Note: reading another process' `io` file requires ptrace-level
/// permissions; reading one's own (or a child's) is generally allowed.
pub fn read_pid_io(pid: i32) -> Result<PidIo, ProcError> {
    let path = format!("/proc/{pid}/io");
    match fs::read_to_string(&path) {
        Ok(content) => parse_pid_io(&content),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Err(ProcError::ProcessGone(pid)),
        Err(e) => Err(e.into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const IO: &str = "\
rchar: 323934931\n\
wchar: 323929600\n\
syscr: 632687\n\
syscw: 632675\n\
read_bytes: 12288\n\
write_bytes: 323932160\n\
cancelled_write_bytes: 0\n";

    #[test]
    fn parses_all_counters() {
        let io = parse_pid_io(IO).unwrap();
        assert_eq!(io.rchar, 323934931);
        assert_eq!(io.wchar, 323929600);
        assert_eq!(io.syscr, 632687);
        assert_eq!(io.syscw, 632675);
        assert_eq!(io.read_bytes, 12288);
        assert_eq!(io.write_bytes, 323932160);
    }

    #[test]
    fn delta_since_differences_counters() {
        let a = parse_pid_io(IO).unwrap();
        let mut b = a;
        b.wchar += 100;
        b.syscw += 2;
        let d = b.delta_since(&a);
        assert_eq!(d.wchar, 100);
        assert_eq!(d.syscw, 2);
        assert_eq!(d.rchar, 0);
    }

    #[test]
    fn delta_saturates_on_counter_reset() {
        let a = parse_pid_io(IO).unwrap();
        let zero = PidIo::default();
        let d = zero.delta_since(&a);
        assert_eq!(d.rchar, 0);
        assert_eq!(d.write_bytes, 0);
    }

    #[test]
    fn malformed_counters_error() {
        assert!(parse_pid_io("rchar: lots\n").is_err());
    }

    #[test]
    fn unknown_lines_ignored() {
        let io = parse_pid_io("brand_new_counter: 5\nrchar: 7\n").unwrap();
        assert_eq!(io.rchar, 7);
    }

    #[test]
    fn reads_own_process_when_permitted() {
        // Inside containers this may be restricted; accept both
        // success and a permission error, but never a parse failure.
        match read_pid_io(std::process::id() as i32) {
            Ok(io) => assert!(io.rchar > 0, "the test harness has surely read bytes"),
            Err(ProcError::Io(e)) => {
                assert_eq!(e.kind(), std::io::ErrorKind::PermissionDenied)
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
}
