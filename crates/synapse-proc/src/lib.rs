#![warn(missing_docs)]

//! OS process introspection for the Synapse profiler.
//!
//! The paper's profiler "uses the perf-stat utility to inspect CPU
//! activity, the /proc/ filesystem to read system counters on memory
//! and disk I/O, and the POSIX rusage call to obtain runtime process
//! information" (§4.1). This crate implements the `/proc` and `rusage`
//! parts natively:
//!
//! * [`pidstat`] — `/proc/<pid>/stat` (CPU time, thread count, state),
//! * [`pidstatus`] — `/proc/<pid>/status` (VmRSS, VmPeak, VmSize),
//! * [`pidio`] — `/proc/<pid>/io` (bytes read/written, syscall counts),
//! * [`sysinfo`] — host facts (`/proc/cpuinfo`, `/proc/meminfo`,
//!   load averages) for the "System" block of Table 1,
//! * [`rusage`] — `getrusage(2)` / `wait4(2)` process accounting,
//! * [`timev`] — a `time -v` analogue used to correct the profiler
//!   startup offset (§4.1).
//!
//! All parsers are pure functions over text so they are unit-testable
//! without a live process; thin I/O wrappers read the actual files.

pub mod error;
pub mod pidio;
pub mod pidstat;
pub mod pidstatus;
pub mod rusage;
pub mod sysinfo;
pub mod timev;

pub use error::ProcError;
pub use pidio::{read_pid_io, PidIo};
pub use pidstat::{read_pid_stat, PidStat};
pub use pidstatus::{read_pid_status, PidStatus};
pub use rusage::{rusage_children, rusage_self, ResourceUsage};
pub use sysinfo::{host_system_info, read_loadavg, LoadAvg};
pub use timev::{TimedChild, TimedResult};
