//! A `time -v` analogue: spawn a command, measure wall time precisely
//! from the moment of spawning, and collect exit status plus resource
//! usage on completion.
//!
//! The paper wraps the profiled process "into the POSIX tool `time
//! -v`, which allows us to correct some of the effects of that offset"
//! between process spawn and the first watcher sample (§4.1). This
//! module provides the same capability in-process: the spawn timestamp
//! is taken immediately around `fork/exec`, so the measured `Tx` does
//! not include profiler start-up.

use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use crate::error::ProcError;
use crate::rusage::{wait4, ResourceUsage};

/// A child process with a precise spawn timestamp.
pub struct TimedChild {
    child: Child,
    started: Instant,
    command_line: String,
}

/// Final measurements of a timed child.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimedResult {
    /// Wall-clock execution time (spawn → reap), the paper's `Tx`.
    pub wall_time: Duration,
    /// Exit code (128+signal if killed by a signal).
    pub exit_code: i32,
    /// Resource usage reported by `wait4`.
    pub usage: ResourceUsage,
}

impl TimedChild {
    /// Spawn `program args...` with stdout/stderr silenced (profiling
    /// must not mix application output into profiler output).
    pub fn spawn(program: &str, args: &[&str]) -> Result<TimedChild, ProcError> {
        let mut cmd = Command::new(program);
        cmd.args(args).stdout(Stdio::null()).stderr(Stdio::null());
        Self::spawn_command(cmd)
    }

    /// Spawn a prepared [`Command`]; the caller controls stdio and
    /// environment.
    pub fn spawn_command(mut cmd: Command) -> Result<TimedChild, ProcError> {
        let command_line = format!("{cmd:?}");
        let started = Instant::now();
        let child = cmd.spawn()?;
        Ok(TimedChild {
            child,
            started,
            command_line,
        })
    }

    /// PID of the running child (handed to the watcher threads).
    pub fn pid(&self) -> i32 {
        self.child.id() as i32
    }

    /// The command line, for profile keys and diagnostics.
    pub fn command_line(&self) -> &str {
        &self.command_line
    }

    /// Elapsed wall time since spawn.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Non-blocking liveness check.
    pub fn is_running(&mut self) -> bool {
        matches!(self.child.try_wait(), Ok(None))
    }

    /// Block until the child has exited *without reaping it*
    /// (`waitid` with `WNOWAIT`). The child stays a zombie, so its
    /// `/proc` entries — including the cumulative I/O counters —
    /// remain readable for the watchers' final samples. Follow up
    /// with [`TimedChild::wait`] to reap and collect rusage.
    pub fn wait_without_reaping(&self) -> Result<Duration, ProcError> {
        // SAFETY: siginfo_t is plain old data; all-zero bytes are
        // a valid value for an out-parameter about to be overwritten.
        let mut info: libc::siginfo_t = unsafe { std::mem::zeroed() };
        // SAFETY: info is a valid out-parameter; the pid belongs to a
        // child of this process.
        let rc = unsafe {
            libc::waitid(
                libc::P_PID,
                self.child.id() as libc::id_t,
                &mut info,
                libc::WEXITED | libc::WNOWAIT,
            )
        };
        if rc != 0 {
            return Err(ProcError::Sys {
                call: "waitid",
                errno: std::io::Error::last_os_error().raw_os_error().unwrap_or(0),
            });
        }
        Ok(self.started.elapsed())
    }

    /// Block until the child exits; returns the `time -v`-style
    /// measurements. Uses `wait4` so the rusage belongs to exactly
    /// this child.
    pub fn wait(mut self) -> Result<TimedResult, ProcError> {
        let pid = self.pid();
        let (exit_code, usage) = match wait4(pid) {
            Ok(r) => r,
            Err(_) => {
                // If something else reaped it (shouldn't happen), fall
                // back to the std wait for the exit code; rusage is
                // then unavailable.
                let status = self.child.wait()?;
                return Ok(TimedResult {
                    wall_time: self.started.elapsed(),
                    exit_code: status.code().unwrap_or(-1),
                    usage: ResourceUsage::default(),
                });
            }
        };
        let wall_time = self.started.elapsed();
        // wait4 already reaped the process; forget the Child so its
        // Drop does not wait on a stale pid.
        std::mem::forget(self.child);
        Ok(TimedResult {
            wall_time,
            exit_code,
            usage,
        })
    }

    /// Kill the child (failure injection / cancellation).
    pub fn kill(&mut self) -> Result<(), ProcError> {
        self.child.kill()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_wall_time_of_sleep() {
        let child = TimedChild::spawn("/bin/sleep", &["0.2"]).unwrap();
        assert!(child.command_line().contains("sleep"));
        let result = child.wait().unwrap();
        assert_eq!(result.exit_code, 0);
        assert!(
            result.wall_time >= Duration::from_millis(190),
            "wall {:?} must cover the sleep",
            result.wall_time
        );
        assert!(
            result.wall_time < Duration::from_secs(5),
            "wall {:?} absurdly long",
            result.wall_time
        );
    }

    #[test]
    fn captures_exit_codes() {
        let child = TimedChild::spawn("/bin/sh", &["-c", "exit 3"]).unwrap();
        assert_eq!(child.wait().unwrap().exit_code, 3);
    }

    #[test]
    fn captures_signal_deaths() {
        let mut child = TimedChild::spawn("/bin/sleep", &["30"]).unwrap();
        assert!(child.is_running());
        child.kill().unwrap();
        let result = child.wait().unwrap();
        assert_eq!(result.exit_code, 128 + libc::SIGKILL);
    }

    #[test]
    fn pid_is_observable_while_running() {
        let mut child = TimedChild::spawn("/bin/sleep", &["0.3"]).unwrap();
        let pid = child.pid();
        assert!(pid > 0);
        // The watcher can read its /proc entry.
        let stat = crate::pidstat::read_pid_stat(pid).unwrap();
        assert_eq!(stat.pid, pid);
        assert!(child.is_running());
        let result = child.wait().unwrap();
        assert_eq!(result.exit_code, 0);
    }

    #[test]
    fn usage_reflects_cpu_burn() {
        let child = TimedChild::spawn(
            "/bin/sh",
            &["-c", "i=0; while [ $i -lt 60000 ]; do i=$((i+1)); done"],
        )
        .unwrap();
        let result = child.wait().unwrap();
        assert_eq!(result.exit_code, 0);
        assert!(result.usage.cpu_time() > Duration::ZERO);
        assert!(result.usage.max_rss > 0);
    }

    #[test]
    fn spawn_failure_is_reported() {
        assert!(TimedChild::spawn("/no/such/binary", &[]).is_err());
    }
}
