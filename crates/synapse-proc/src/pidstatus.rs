//! `/proc/<pid>/status` parsing: memory gauges (VmRSS, VmPeak, VmSize).

use std::fs;

use crate::error::ProcError;

/// Memory-related fields of `/proc/<pid>/status`, in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PidStatus {
    /// Current resident set size.
    pub vm_rss: u64,
    /// Peak resident set size ("high water mark").
    pub vm_hwm: u64,
    /// Current virtual memory size.
    pub vm_size: u64,
    /// Peak virtual memory size.
    pub vm_peak: u64,
    /// Number of threads.
    pub threads: u32,
}

/// Parse the content of a `/proc/<pid>/status` file.
///
/// Unknown lines are ignored; missing memory lines (kernel threads)
/// default to zero, matching the profiler's "no data" semantics.
pub fn parse_pid_status(content: &str) -> Result<PidStatus, ProcError> {
    let mut out = PidStatus::default();
    for line in content.lines() {
        let Some((key, value)) = line.split_once(':') else {
            continue;
        };
        let value = value.trim();
        match key.trim() {
            "VmRSS" => out.vm_rss = parse_kb(value)?,
            "VmHWM" => out.vm_hwm = parse_kb(value)?,
            "VmSize" => out.vm_size = parse_kb(value)?,
            "VmPeak" => out.vm_peak = parse_kb(value)?,
            "Threads" => {
                out.threads = value.parse().map_err(|e| ProcError::Parse {
                    what: "pid/status",
                    reason: format!("Threads: {e}"),
                })?
            }
            _ => {}
        }
    }
    Ok(out)
}

/// Parse a `<n> kB` memory value into bytes.
fn parse_kb(value: &str) -> Result<u64, ProcError> {
    let num = value
        .split_whitespace()
        .next()
        .ok_or_else(|| ProcError::Parse {
            what: "pid/status",
            reason: format!("empty memory value: {value:?}"),
        })?;
    let kb: u64 = num.parse().map_err(|e| ProcError::Parse {
        what: "pid/status",
        reason: format!("memory value {value:?}: {e}"),
    })?;
    Ok(kb * 1024)
}

/// Read and parse `/proc/<pid>/status` for a live process.
pub fn read_pid_status(pid: i32) -> Result<PidStatus, ProcError> {
    let path = format!("/proc/{pid}/status");
    match fs::read_to_string(&path) {
        Ok(content) => parse_pid_status(&content),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Err(ProcError::ProcessGone(pid)),
        Err(e) => Err(e.into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const STATUS: &str = "\
Name:\tgromacs\n\
Umask:\t0022\n\
State:\tR (running)\n\
VmPeak:\t  123456 kB\n\
VmSize:\t  100000 kB\n\
VmHWM:\t    8192 kB\n\
VmRSS:\t    4096 kB\n\
Threads:\t4\n\
voluntary_ctxt_switches:\t100\n";

    #[test]
    fn parses_memory_fields_to_bytes() {
        let s = parse_pid_status(STATUS).unwrap();
        assert_eq!(s.vm_rss, 4096 * 1024);
        assert_eq!(s.vm_hwm, 8192 * 1024);
        assert_eq!(s.vm_size, 100000 * 1024);
        assert_eq!(s.vm_peak, 123456 * 1024);
        assert_eq!(s.threads, 4);
    }

    #[test]
    fn missing_fields_default_to_zero() {
        let s = parse_pid_status("Name:\tkthreadd\nThreads:\t1\n").unwrap();
        assert_eq!(s.vm_rss, 0);
        assert_eq!(s.vm_peak, 0);
        assert_eq!(s.threads, 1);
    }

    #[test]
    fn malformed_values_are_errors() {
        assert!(parse_pid_status("VmRSS:\tnot-a-number kB\n").is_err());
        assert!(parse_pid_status("Threads:\tmany\n").is_err());
        assert!(parse_pid_status("VmRSS:\n").is_err());
    }

    #[test]
    fn unknown_lines_ignored() {
        let s = parse_pid_status("SomeNewKernelField:\t77\nVmRSS:\t1 kB\n").unwrap();
        assert_eq!(s.vm_rss, 1024);
    }

    #[test]
    fn reads_own_process() {
        let s = read_pid_status(std::process::id() as i32).unwrap();
        assert!(s.vm_rss > 0, "a running Rust test has resident memory");
        assert!(s.threads >= 1);
        assert!(s.vm_hwm >= s.vm_rss || s.vm_hwm == 0);
    }

    #[test]
    fn vanished_process_reports_gone() {
        assert!(matches!(
            read_pid_status(i32::MAX),
            Err(ProcError::ProcessGone(_))
        ));
    }
}
