//! Error type for process introspection.

use std::fmt;

/// Errors reading or parsing `/proc` data and process accounting.
#[derive(Debug)]
pub enum ProcError {
    /// Filesystem failure (including ENOENT for vanished processes).
    Io(std::io::Error),
    /// A `/proc` file did not have the expected shape.
    Parse {
        /// Which file was being parsed.
        what: &'static str,
        /// What went wrong.
        reason: String,
    },
    /// The observed process exited before/while being sampled.
    ProcessGone(i32),
    /// A libc call failed.
    Sys {
        /// The libc call.
        call: &'static str,
        /// errno value.
        errno: i32,
    },
}

impl fmt::Display for ProcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProcError::Io(e) => write!(f, "io error: {e}"),
            ProcError::Parse { what, reason } => write!(f, "cannot parse {what}: {reason}"),
            ProcError::ProcessGone(pid) => write!(f, "process {pid} is gone"),
            ProcError::Sys { call, errno } => write!(f, "{call} failed with errno {errno}"),
        }
    }
}

impl std::error::Error for ProcError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProcError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ProcError {
    fn from(e: std::io::Error) -> Self {
        ProcError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(ProcError::ProcessGone(42).to_string().contains("42"));
        assert!(ProcError::Parse {
            what: "stat",
            reason: "short".into()
        }
        .to_string()
        .contains("stat"));
        assert!(ProcError::Sys {
            call: "getrusage",
            errno: 22
        }
        .to_string()
        .contains("getrusage"));
    }

    #[test]
    fn io_conversion_preserves_source() {
        use std::error::Error;
        let e: ProcError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(e.source().is_some());
    }
}
