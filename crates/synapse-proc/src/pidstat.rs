//! `/proc/<pid>/stat` parsing: CPU time, thread count and state.

use std::fs;

use crate::error::ProcError;

/// Clock ticks per second (`sysconf(_SC_CLK_TCK)`), the unit of
/// `utime`/`stime` in `/proc/<pid>/stat`.
pub fn clock_ticks_per_sec() -> f64 {
    // SAFETY: sysconf with a valid name has no preconditions.
    let hz = unsafe { libc::sysconf(libc::_SC_CLK_TCK) };
    if hz <= 0 {
        100.0 // POSIX default
    } else {
        hz as f64
    }
}

/// Selected fields of `/proc/<pid>/stat`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PidStat {
    /// Process id (field 1).
    pub pid: i32,
    /// Single-character process state (field 3): R, S, D, Z, T, ...
    pub state: char,
    /// User-mode CPU time in clock ticks (field 14).
    pub utime_ticks: u64,
    /// Kernel-mode CPU time in clock ticks (field 15).
    pub stime_ticks: u64,
    /// Number of threads (field 20).
    pub num_threads: u32,
    /// Process start time after boot, in clock ticks (field 22).
    pub starttime_ticks: u64,
    /// Virtual memory size in bytes (field 23).
    pub vsize: u64,
    /// Resident set size in pages (field 24).
    pub rss_pages: i64,
}

impl PidStat {
    /// Total CPU time (user + system) in seconds.
    pub fn cpu_seconds(&self) -> f64 {
        (self.utime_ticks + self.stime_ticks) as f64 / clock_ticks_per_sec()
    }

    /// Resident set size in bytes.
    pub fn rss_bytes(&self) -> u64 {
        // SAFETY: sysconf takes no pointers and has no preconditions.
        let page = unsafe { libc::sysconf(libc::_SC_PAGESIZE) };
        let page = if page <= 0 { 4096 } else { page as u64 };
        self.rss_pages.max(0) as u64 * page
    }

    /// Whether the process is a zombie (exited, not yet reaped).
    pub fn is_zombie(&self) -> bool {
        self.state == 'Z'
    }
}

/// Parse the content of a `/proc/<pid>/stat` file.
///
/// The second field (`comm`) may contain spaces and parentheses, so we
/// locate the *last* `)` and split the remainder, as procfs(5)
/// prescribes.
pub fn parse_pid_stat(content: &str) -> Result<PidStat, ProcError> {
    let content = content.trim();
    let open = content.find('(').ok_or_else(|| ProcError::Parse {
        what: "pid/stat",
        reason: "missing '(' around comm".into(),
    })?;
    let close = content.rfind(')').ok_or_else(|| ProcError::Parse {
        what: "pid/stat",
        reason: "missing ')' around comm".into(),
    })?;
    if close < open {
        return Err(ProcError::Parse {
            what: "pid/stat",
            reason: "mismatched comm parentheses".into(),
        });
    }
    let pid: i32 = content[..open]
        .trim()
        .parse()
        .map_err(|e| ProcError::Parse {
            what: "pid/stat",
            reason: format!("pid field: {e}"),
        })?;
    // Fields after the comm, 1-indexed from field 3 (state).
    let rest: Vec<&str> = content[close + 1..].split_whitespace().collect();
    // state is rest[0] (field 3); utime field 14 -> rest[11]; stime 15 ->
    // rest[12]; num_threads 20 -> rest[17]; starttime 22 -> rest[19];
    // vsize 23 -> rest[20]; rss 24 -> rest[21].
    if rest.len() < 22 {
        return Err(ProcError::Parse {
            what: "pid/stat",
            reason: format!("expected >= 22 fields after comm, got {}", rest.len()),
        });
    }
    let field = |idx: usize, name: &'static str| -> Result<u64, ProcError> {
        rest[idx].parse().map_err(|e| ProcError::Parse {
            what: "pid/stat",
            reason: format!("{name}: {e}"),
        })
    };
    Ok(PidStat {
        pid,
        state: rest[0].chars().next().unwrap_or('?'),
        utime_ticks: field(11, "utime")?,
        stime_ticks: field(12, "stime")?,
        num_threads: field(17, "num_threads")? as u32,
        starttime_ticks: field(19, "starttime")?,
        vsize: field(20, "vsize")?,
        rss_pages: rest[21].parse().map_err(|e| ProcError::Parse {
            what: "pid/stat",
            reason: format!("rss: {e}"),
        })?,
    })
}

/// Read and parse `/proc/<pid>/stat` for a live process.
pub fn read_pid_stat(pid: i32) -> Result<PidStat, ProcError> {
    let path = format!("/proc/{pid}/stat");
    match fs::read_to_string(&path) {
        Ok(content) => parse_pid_stat(&content),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Err(ProcError::ProcessGone(pid)),
        Err(e) => Err(e.into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // A realistic stat line (trimmed from a live kernel) with a comm
    // containing a space and parentheses.
    const LINE: &str = "1234 (my (weird) app) S 1 1234 1234 0 -1 4194304 \
        1000 0 0 0 250 50 0 0 20 0 3 0 567890 123456789 456 \
        18446744073709551615 0 0 0 0 0 0 0 0 0 0 0 0 17 1 0 0 0 0 0";

    #[test]
    fn parses_fields_past_hostile_comm() {
        let s = parse_pid_stat(LINE).unwrap();
        assert_eq!(s.pid, 1234);
        assert_eq!(s.state, 'S');
        assert_eq!(s.utime_ticks, 250);
        assert_eq!(s.stime_ticks, 50);
        assert_eq!(s.num_threads, 3);
        assert_eq!(s.starttime_ticks, 567890);
        assert_eq!(s.vsize, 123456789);
        assert_eq!(s.rss_pages, 456);
        assert!(!s.is_zombie());
    }

    #[test]
    fn cpu_seconds_uses_clock_ticks() {
        let s = parse_pid_stat(LINE).unwrap();
        let hz = clock_ticks_per_sec();
        assert!((s.cpu_seconds() - 300.0 / hz).abs() < 1e-9);
        assert!(hz > 0.0);
    }

    #[test]
    fn rss_bytes_is_pages_times_pagesize() {
        let s = parse_pid_stat(LINE).unwrap();
        assert!(s.rss_bytes() >= 456 * 4096 / 16); // page size sanity
        assert_eq!(s.rss_bytes() % 456, 0);
    }

    #[test]
    fn zombie_detection() {
        let line = LINE.replacen(") S ", ") Z ", 1);
        assert!(parse_pid_stat(&line).unwrap().is_zombie());
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_pid_stat("").is_err());
        assert!(parse_pid_stat("1234 no-parens S 1").is_err());
        assert!(parse_pid_stat("1234 (x) S 1 2 3").is_err()); // too short
        assert!(parse_pid_stat(") 1234 ( S").is_err()); // mismatched
    }

    #[test]
    fn negative_rss_clamps_to_zero_bytes() {
        let line = LINE.replace(" 456 ", " -1 ");
        let s = parse_pid_stat(&line).unwrap();
        assert_eq!(s.rss_pages, -1);
        assert_eq!(s.rss_bytes(), 0);
    }

    #[test]
    fn reads_own_process() {
        let me = std::process::id() as i32;
        let s = read_pid_stat(me).unwrap();
        assert_eq!(s.pid, me);
        assert!(s.num_threads >= 1);
        assert!(s.vsize > 0);
    }

    #[test]
    fn vanished_process_reports_gone() {
        // PID 0 never has a /proc entry accessible this way; very large
        // PIDs beyond pid_max do not exist either.
        let r = read_pid_stat(i32::MAX);
        assert!(matches!(r, Err(ProcError::ProcessGone(_))));
    }
}
