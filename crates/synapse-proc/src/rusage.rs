//! POSIX `getrusage(2)` / `wait4(2)` process accounting.
//!
//! The paper uses "the POSIX rusage call to obtain runtime process
//! information" (§4.1). We wrap both the self/children queries and the
//! `wait4` variant that atomically reaps a child while collecting its
//! resource usage (what the `time -v` wrapper relies on).

use std::time::Duration;

use crate::error::ProcError;

/// Process accounting snapshot (subset of `struct rusage`).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ResourceUsage {
    /// User-mode CPU time.
    pub user_time: Duration,
    /// Kernel-mode CPU time.
    pub system_time: Duration,
    /// Peak resident set size in bytes.
    pub max_rss: u64,
    /// Voluntary context switches.
    pub voluntary_ctxt: u64,
    /// Involuntary context switches.
    pub involuntary_ctxt: u64,
    /// Block input operations.
    pub inblock: u64,
    /// Block output operations.
    pub oublock: u64,
}

impl ResourceUsage {
    /// Total CPU time (user + system).
    pub fn cpu_time(&self) -> Duration {
        self.user_time + self.system_time
    }

    fn from_libc(ru: &libc::rusage) -> ResourceUsage {
        let tv = |t: libc::timeval| {
            Duration::new(t.tv_sec.max(0) as u64, (t.tv_usec.max(0) as u32) * 1000)
        };
        ResourceUsage {
            user_time: tv(ru.ru_utime),
            system_time: tv(ru.ru_stime),
            // ru_maxrss is kilobytes on Linux.
            max_rss: (ru.ru_maxrss.max(0) as u64) * 1024,
            voluntary_ctxt: ru.ru_nvcsw.max(0) as u64,
            involuntary_ctxt: ru.ru_nivcsw.max(0) as u64,
            inblock: ru.ru_inblock.max(0) as u64,
            oublock: ru.ru_oublock.max(0) as u64,
        }
    }
}

fn getrusage(who: libc::c_int) -> Result<ResourceUsage, ProcError> {
    // SAFETY: rusage is plain old data; all-zero bytes are valid.
    let mut ru: libc::rusage = unsafe { std::mem::zeroed() };
    // SAFETY: ru is a valid, writable rusage struct.
    let rc = unsafe { libc::getrusage(who, &mut ru) };
    if rc != 0 {
        return Err(ProcError::Sys {
            call: "getrusage",
            errno: std::io::Error::last_os_error().raw_os_error().unwrap_or(0),
        });
    }
    Ok(ResourceUsage::from_libc(&ru))
}

/// Resource usage of the calling process.
pub fn rusage_self() -> Result<ResourceUsage, ProcError> {
    getrusage(libc::RUSAGE_SELF)
}

/// Aggregated resource usage of reaped children.
pub fn rusage_children() -> Result<ResourceUsage, ProcError> {
    getrusage(libc::RUSAGE_CHILDREN)
}

/// Reap a child with `wait4(2)`, returning its exit status and
/// resource usage atomically.
pub fn wait4(pid: i32) -> Result<(i32, ResourceUsage), ProcError> {
    let mut status: libc::c_int = 0;
    // SAFETY: rusage is plain old data; all-zero bytes are valid.
    let mut ru: libc::rusage = unsafe { std::mem::zeroed() };
    // SAFETY: status and ru are valid writable out-parameters.
    let rc = unsafe { libc::wait4(pid, &mut status, 0, &mut ru) };
    if rc < 0 {
        return Err(ProcError::Sys {
            call: "wait4",
            errno: std::io::Error::last_os_error().raw_os_error().unwrap_or(0),
        });
    }
    let exit_code = if libc::WIFEXITED(status) {
        libc::WEXITSTATUS(status)
    } else if libc::WIFSIGNALED(status) {
        128 + libc::WTERMSIG(status)
    } else {
        -1
    };
    Ok((exit_code, ResourceUsage::from_libc(&ru)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_usage_is_sane() {
        let ru = rusage_self().unwrap();
        assert!(ru.max_rss > 0, "the test process has resident memory");
        // CPU time is non-negative by construction; touch it so the
        // Duration arithmetic is exercised.
        assert!(ru.cpu_time() >= ru.user_time);
    }

    #[test]
    fn children_usage_grows_after_spawning() {
        let before = rusage_children().unwrap();
        // Spawn a short child that does a little work.
        let status = std::process::Command::new("/bin/sh")
            .args(["-c", "i=0; while [ $i -lt 20000 ]; do i=$((i+1)); done"])
            .status()
            .expect("spawn sh");
        assert!(status.success());
        let after = rusage_children().unwrap();
        assert!(after.cpu_time() >= before.cpu_time());
        assert!(after.max_rss >= before.max_rss);
    }

    #[test]
    fn wait4_reaps_child_with_usage() {
        use std::process::Command;
        let child = Command::new("/bin/sh")
            .args(["-c", "exit 7"])
            .spawn()
            .unwrap();
        let pid = child.id() as i32;
        // Do NOT call child.wait(): wait4 must reap it.
        let (code, ru) = wait4(pid).unwrap();
        assert_eq!(code, 7);
        assert!(ru.max_rss > 0);
        // Prevent the Child drop from waiting again on an already
        // reaped pid panicking: dropping Child after external reap is
        // fine (kill/wait fail silently in drop).
        std::mem::forget(child);
    }

    #[test]
    fn wait4_on_nonchild_errors() {
        let r = wait4(1); // init is not our child
        assert!(matches!(r, Err(ProcError::Sys { call: "wait4", .. })));
    }

    #[test]
    fn cpu_time_sums_components() {
        let ru = ResourceUsage {
            user_time: Duration::from_millis(300),
            system_time: Duration::from_millis(200),
            ..Default::default()
        };
        assert_eq!(ru.cpu_time(), Duration::from_millis(500));
    }
}
