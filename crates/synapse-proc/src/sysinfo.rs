//! Host-level facts for the "System" block of Table 1: core count,
//! maximum CPU frequency, total memory and load averages.

use std::fs;

use synapse_model::SystemInfo;

use crate::error::ProcError;

/// Parse `MemTotal` (bytes) out of `/proc/meminfo` content.
pub fn parse_meminfo_total(content: &str) -> Result<u64, ProcError> {
    for line in content.lines() {
        if let Some(rest) = line.strip_prefix("MemTotal:") {
            let kb: u64 = rest
                .split_whitespace()
                .next()
                .ok_or_else(|| ProcError::Parse {
                    what: "meminfo",
                    reason: "empty MemTotal".into(),
                })?
                .parse()
                .map_err(|e| ProcError::Parse {
                    what: "meminfo",
                    reason: format!("MemTotal: {e}"),
                })?;
            return Ok(kb * 1024);
        }
    }
    Err(ProcError::Parse {
        what: "meminfo",
        reason: "MemTotal line missing".into(),
    })
}

/// Parse core count and maximum observed frequency (Hz) out of
/// `/proc/cpuinfo` content. The frequency is the maximum `cpu MHz`
/// across cores (a lower bound on the turbo max, good enough for the
/// derived utilization metric).
pub fn parse_cpuinfo(content: &str) -> Result<(u32, f64), ProcError> {
    let mut cores = 0u32;
    let mut max_mhz = 0f64;
    for line in content.lines() {
        if line.starts_with("processor") {
            cores += 1;
        } else if let Some((key, value)) = line.split_once(':') {
            if key.trim() == "cpu MHz" {
                let mhz: f64 = value.trim().parse().map_err(|e| ProcError::Parse {
                    what: "cpuinfo",
                    reason: format!("cpu MHz: {e}"),
                })?;
                max_mhz = max_mhz.max(mhz);
            }
        }
    }
    if cores == 0 {
        return Err(ProcError::Parse {
            what: "cpuinfo",
            reason: "no processor entries".into(),
        });
    }
    Ok((cores, max_mhz * 1e6))
}

/// System load averages from `/proc/loadavg`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LoadAvg {
    /// 1-minute load average.
    pub one: f64,
    /// 5-minute load average.
    pub five: f64,
    /// 15-minute load average.
    pub fifteen: f64,
}

/// Parse `/proc/loadavg` content.
pub fn parse_loadavg(content: &str) -> Result<LoadAvg, ProcError> {
    let mut parts = content.split_whitespace();
    let mut next = |name: &'static str| -> Result<f64, ProcError> {
        parts
            .next()
            .ok_or_else(|| ProcError::Parse {
                what: "loadavg",
                reason: format!("missing field {name}"),
            })?
            .parse()
            .map_err(|e| ProcError::Parse {
                what: "loadavg",
                reason: format!("{name}: {e}"),
            })
    };
    Ok(LoadAvg {
        one: next("1min")?,
        five: next("5min")?,
        fifteen: next("15min")?,
    })
}

/// Read the live `/proc/loadavg`.
pub fn read_loadavg() -> Result<LoadAvg, ProcError> {
    parse_loadavg(&fs::read_to_string("/proc/loadavg")?)
}

/// Current hostname via `gethostname(2)`.
pub fn hostname() -> String {
    let mut buf = [0u8; 256];
    // SAFETY: buf is a valid writable buffer of the stated length.
    let rc = unsafe { libc::gethostname(buf.as_mut_ptr() as *mut libc::c_char, buf.len()) };
    if rc != 0 {
        return "unknown".into();
    }
    let end = buf.iter().position(|&b| b == 0).unwrap_or(buf.len());
    String::from_utf8_lossy(&buf[..end]).into_owned()
}

/// Gather the host [`SystemInfo`] recorded in every profile. Missing
/// `/sys` frequency data falls back to `/proc/cpuinfo`'s `cpu MHz`.
pub fn host_system_info() -> Result<SystemInfo, ProcError> {
    let cpuinfo = fs::read_to_string("/proc/cpuinfo")?;
    let (ncores, mut max_freq_hz) = parse_cpuinfo(&cpuinfo)?;
    // Prefer the scaling driver's reported hardware maximum if present.
    if let Ok(s) = fs::read_to_string("/sys/devices/system/cpu/cpu0/cpufreq/cpuinfo_max_freq") {
        if let Ok(khz) = s.trim().parse::<f64>() {
            max_freq_hz = khz * 1e3;
        }
    }
    if max_freq_hz <= 0.0 {
        // Last resort: a nominal 1 GHz so derived metrics stay finite.
        max_freq_hz = 1e9;
    }
    let total_memory = parse_meminfo_total(&fs::read_to_string("/proc/meminfo")?)?;
    let load_avg = read_loadavg().map(|l| l.one).unwrap_or(0.0);
    Ok(SystemInfo {
        hostname: hostname(),
        ncores,
        max_freq_hz,
        total_memory,
        load_avg,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meminfo_total_parses() {
        let total = parse_meminfo_total("MemTotal:        8052892 kB\nMemFree: 1 kB\n").unwrap();
        assert_eq!(total, 8052892 * 1024);
        assert!(parse_meminfo_total("MemFree: 1 kB\n").is_err());
        assert!(parse_meminfo_total("MemTotal: lots kB\n").is_err());
    }

    #[test]
    fn cpuinfo_counts_cores_and_max_mhz() {
        let content = "\
processor\t: 0\ncpu MHz\t\t: 1200.000\n\nprocessor\t: 1\ncpu MHz\t\t: 2667.000\n";
        let (cores, hz) = parse_cpuinfo(content).unwrap();
        assert_eq!(cores, 2);
        assert!((hz - 2.667e9).abs() < 1e3);
    }

    #[test]
    fn cpuinfo_without_mhz_still_counts_cores() {
        // Some architectures (aarch64) have no "cpu MHz" lines.
        let (cores, hz) = parse_cpuinfo("processor\t: 0\nBogoMIPS\t: 50.00\n").unwrap();
        assert_eq!(cores, 1);
        assert_eq!(hz, 0.0);
        assert!(parse_cpuinfo("flags: fpu\n").is_err());
    }

    #[test]
    fn loadavg_parses() {
        let l = parse_loadavg("0.52 0.58 0.59 1/467 12345\n").unwrap();
        assert!((l.one - 0.52).abs() < 1e-12);
        assert!((l.five - 0.58).abs() < 1e-12);
        assert!((l.fifteen - 0.59).abs() < 1e-12);
        assert!(parse_loadavg("0.1 0.2").is_err());
        assert!(parse_loadavg("a b c").is_err());
    }

    #[test]
    fn live_host_info_is_sane() {
        let info = host_system_info().unwrap();
        assert!(info.ncores >= 1);
        assert!(info.max_freq_hz > 0.0);
        assert!(info.total_memory > 0);
        assert!(!info.hostname.is_empty());
    }

    #[test]
    fn live_loadavg_reads() {
        let l = read_loadavg().unwrap();
        assert!(l.one >= 0.0);
    }

    #[test]
    fn hostname_nonempty() {
        assert!(!hostname().is_empty());
    }
}
