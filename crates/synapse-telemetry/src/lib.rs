#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! `synapse-telemetry` — the workspace's lock-light metrics plane.
//!
//! The paper's thesis is that workloads become tractable once you
//! profile them; this crate applies the same discipline to our own
//! production surface (engine, reactor server, store, cluster). It is
//! a hand-rolled, std-only substitute for the `prometheus` crate in
//! the same spirit as the other vendored stubs: exactly the surface
//! the workspace needs, nothing more.
//!
//! # Design
//!
//! * **Hot paths never lock.** [`Counter`] and [`Gauge`] are single
//!   atomics; [`Histogram`] is a fixed array of atomic bucket counts
//!   plus a CAS-looped f64 sum. Subsystems resolve their handles once
//!   (at startup, behind a `OnceLock`) and then update through `Arc`s;
//!   the registry's internal mutex is touched only at registration and
//!   scrape time.
//! * **Series can't drift from operational state.** A registry entry
//!   can be *bound* to a handle another subsystem already owns
//!   ([`Registry::bind_counter`]): `/store/stats` and `/metrics` then
//!   read the very same atomics, so there is no second bookkeeping
//!   path to fall out of sync.
//! * **Prometheus text exposition** ([`Registry::render`]) — version
//!   0.0.4 of the format: `# HELP`/`# TYPE` headers, cumulative
//!   `_bucket{le="..."}` series, `_sum`/`_count`, escaped label
//!   values, families sorted by name so scrapes are deterministic.
//!
//! # Naming scheme
//!
//! Every series is `synapse_<subsystem>_<name>`, with base units
//! (seconds, bytes) and the usual `_total` suffix on counters:
//! `synapse_engine_simulate_seconds`,
//! `synapse_server_connections_accepted_total`, …
//!
//! ```
//! use synapse_telemetry::{global, DURATION_BUCKETS};
//!
//! let hits = global().counter("demo_cache_hits_total", "Cache hits.");
//! hits.inc();
//! let lat = global().histogram("demo_op_seconds", "Op latency.", DURATION_BUCKETS);
//! lat.observe(0.003);
//! let text = global().render();
//! assert!(text.contains("demo_cache_hits_total 1"));
//! assert!(text.contains("demo_op_seconds_bucket{le=\"+Inf\"} 1"));
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Default latency buckets (seconds): 1µs → ~65s, doubling. Wide
/// enough for a cache probe and a 55k-point sweep on the same scale.
pub const DURATION_BUCKETS: &[f64] = &[
    1e-6, 2e-6, 4e-6, 8e-6, 16e-6, 32e-6, 64e-6, 128e-6, 256e-6, 512e-6, 1e-3, 2e-3, 4e-3, 8e-3,
    16e-3, 32e-3, 64e-3, 128e-3, 256e-3, 512e-3, 1.024, 2.048, 4.096, 8.192, 16.384, 32.768,
    65.536,
];

/// Default size buckets (counts/bytes): 1 → 64Ki, ×4.
pub const SIZE_BUCKETS: &[f64] = &[
    1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0,
];

/// `count` buckets starting at `start` and multiplying by `factor` —
/// the shape `prometheus::exponential_buckets` has.
pub fn exponential_buckets(start: f64, factor: f64, count: usize) -> Vec<f64> {
    assert!(start > 0.0 && factor > 1.0, "degenerate bucket ladder");
    let mut bounds = Vec::with_capacity(count);
    let mut bound = start;
    for _ in 0..count {
        bounds.push(bound);
        bound *= factor;
    }
    bounds
}

/// A monotone event count.
///
/// Updates are `Relaxed`: series are monitoring data read at scrape
/// time, not synchronization edges — the same trade the store's lock
/// counters already made.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A free-standing counter (bind it later, or keep it private).
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Count one event.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Count `n` events.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A value that can go up and down (stored as f64 bits in one atomic).
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// A free-standing gauge at 0.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Replace the value.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Add `delta` (CAS loop; gauges are not hot enough to care).
    pub fn add(&self, delta: f64) {
        let mut current = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + delta).to_bits();
            match self.bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => current = seen,
            }
        }
    }

    /// Subtract `delta`.
    pub fn sub(&self, delta: f64) {
        self.add(-delta);
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1.0);
    }

    /// Subtract one.
    pub fn dec(&self) {
        self.add(-1.0);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket histogram: per-bucket atomic counts plus an atomic
/// f64 sum. `observe` is two relaxed RMWs on the happy path (bucket
/// increment + sum CAS) — cheap enough for per-point latencies.
#[derive(Debug)]
pub struct Histogram {
    /// Finite upper bounds, ascending; the implicit last bucket is +Inf.
    bounds: Box<[f64]>,
    /// One count per bound, plus the +Inf bucket at the end.
    counts: Box<[AtomicU64]>,
    sum_bits: AtomicU64,
}

impl Histogram {
    /// A free-standing histogram over `bounds` (finite, ascending).
    pub fn new(bounds: &[f64]) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bucket bounds must ascend"
        );
        let counts = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds: bounds.into(),
            counts,
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Record one observation.
    pub fn observe(&self, v: f64) {
        // partition_point: first bound >= v fails `< v`… we want the
        // first bucket whose bound is >= v; everything below is < v.
        let idx = self.bounds.partition_point(|b| *b < v);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        let mut current = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => current = seen,
            }
        }
    }

    /// Record the seconds elapsed since `started`.
    pub fn observe_since(&self, started: Instant) {
        self.observe(started.elapsed().as_secs_f64());
    }

    /// Start a [`Span`] that records its lifetime into this histogram
    /// when dropped.
    pub fn start_span(self: &Arc<Self>) -> Span {
        Span {
            hist: Arc::clone(self),
            started: Instant::now(),
            armed: true,
        }
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Estimate the `q`-quantile (0 ≤ q ≤ 1) by linear interpolation
    /// inside the bucket the rank falls in — the same estimate
    /// PromQL's `histogram_quantile` computes. `NaN` when empty;
    /// observations beyond the last finite bound clamp to it.
    pub fn quantile(&self, q: f64) -> f64 {
        let counts: Vec<u64> = self
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return f64::NAN;
        }
        let rank = q.clamp(0.0, 1.0) * total as f64;
        let mut cumulative = 0u64;
        for (i, &n) in counts.iter().enumerate() {
            cumulative += n;
            if (cumulative as f64) >= rank {
                if i == self.bounds.len() {
                    // Rank landed in the +Inf bucket: the honest answer
                    // is "beyond the ladder"; clamp to the last bound.
                    return *self.bounds.last().expect("non-empty bounds");
                }
                let upper = self.bounds[i];
                let lower = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let below = (cumulative - n) as f64;
                let frac = if n == 0 {
                    1.0
                } else {
                    (rank - below) / n as f64
                };
                return lower + (upper - lower) * frac.clamp(0.0, 1.0);
            }
        }
        *self.bounds.last().expect("non-empty bounds")
    }
}

/// A timed scope: records the seconds between construction and drop
/// into its histogram. [`discard`](Span::discard) cancels the record
/// (e.g. an error path that should not pollute a latency series).
pub struct Span {
    hist: Arc<Histogram>,
    started: Instant,
    armed: bool,
}

impl Span {
    /// Seconds since the span started (without ending it).
    pub fn elapsed_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Drop without recording.
    pub fn discard(mut self) {
        self.armed = false;
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.armed {
            self.hist.observe(self.started.elapsed().as_secs_f64());
        }
    }
}

/// The three exposition kinds the workspace uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

enum Handle {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Family {
    help: String,
    kind: Kind,
    /// Keyed by the rendered label set (`""` for unlabeled,
    /// `key="value",key2="v2"` otherwise) so render order is stable.
    series: BTreeMap<String, Handle>,
}

/// A named collection of metric families.
///
/// Registration is idempotent: asking for an existing (name, labels)
/// pair returns the existing handle, so call sites don't need to
/// coordinate "who creates it". Asking for an existing name with a
/// different kind panics — that is a programming error, not runtime
/// state.
#[derive(Default)]
pub struct Registry {
    families: Mutex<BTreeMap<String, Family>>,
}

/// The process-wide registry every subsystem records into and
/// `GET /metrics` renders. Libraries (engine, store, cluster) are used
/// by both the CLI and the server; a process global means neither has
/// to thread a handle through every API to be observable.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::default)
}

impl Registry {
    /// An empty registry (tests; production code uses [`global`]).
    pub fn new() -> Registry {
        Registry::default()
    }

    fn series<F>(
        &self,
        name: &str,
        help: &str,
        kind: Kind,
        labels: &[(&str, &str)],
        make: F,
    ) -> Handle
    where
        F: FnOnce() -> Handle,
    {
        let key = render_labels(labels);
        let mut families = self.families.lock().expect("registry lock");
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind,
            series: BTreeMap::new(),
        });
        assert!(
            family.kind == kind,
            "metric `{name}` already registered as {}, requested as {}",
            family.kind.as_str(),
            kind.as_str()
        );
        let handle = family.series.entry(key).or_insert_with(make);
        match handle {
            Handle::Counter(c) => Handle::Counter(Arc::clone(c)),
            Handle::Gauge(g) => Handle::Gauge(Arc::clone(g)),
            Handle::Histogram(h) => Handle::Histogram(Arc::clone(h)),
        }
    }

    /// Get-or-create an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_with(name, help, &[])
    }

    /// Get-or-create a counter with a label set.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.series(name, help, Kind::Counter, labels, || {
            Handle::Counter(Arc::new(Counter::new()))
        }) {
            Handle::Counter(c) => c,
            _ => unreachable!("kind checked above"),
        }
    }

    /// Get-or-create an unlabeled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.gauge_with(name, help, &[])
    }

    /// Get-or-create a gauge with a label set.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.series(name, help, Kind::Gauge, labels, || {
            Handle::Gauge(Arc::new(Gauge::new()))
        }) {
            Handle::Gauge(g) => g,
            _ => unreachable!("kind checked above"),
        }
    }

    /// Get-or-create an unlabeled histogram over `bounds` (the first
    /// registration's bounds win; later calls get the existing ladder).
    pub fn histogram(&self, name: &str, help: &str, bounds: &[f64]) -> Arc<Histogram> {
        self.histogram_with(name, help, bounds, &[])
    }

    /// Get-or-create a histogram with a label set.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        bounds: &[f64],
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        match self.series(name, help, Kind::Histogram, labels, || {
            Handle::Histogram(Arc::new(Histogram::new(bounds)))
        }) {
            Handle::Histogram(h) => h,
            _ => unreachable!("kind checked above"),
        }
    }

    /// Expose an *existing* counter (owned and updated elsewhere, e.g.
    /// the store's lock counters) as a registry series. Re-binding the
    /// same name replaces the previous handle — the latest owner wins,
    /// which is what a process that reopens its cache wants.
    pub fn bind_counter(&self, name: &str, help: &str, handle: Arc<Counter>) {
        let mut families = self.families.lock().expect("registry lock");
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind: Kind::Counter,
            series: BTreeMap::new(),
        });
        assert!(
            family.kind == Kind::Counter,
            "metric `{name}` already registered as {}",
            family.kind.as_str()
        );
        family.series.insert(String::new(), Handle::Counter(handle));
    }

    /// Expose an existing gauge as a registry series (replace-on-bind,
    /// same semantics as [`bind_counter`](Registry::bind_counter)).
    pub fn bind_gauge(&self, name: &str, help: &str, handle: Arc<Gauge>) {
        let mut families = self.families.lock().expect("registry lock");
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind: Kind::Gauge,
            series: BTreeMap::new(),
        });
        assert!(
            family.kind == Kind::Gauge,
            "metric `{name}` already registered as {}",
            family.kind.as_str()
        );
        family.series.insert(String::new(), Handle::Gauge(handle));
    }

    /// Number of distinct series (labeled variants counted
    /// separately; histograms count once, not per bucket).
    pub fn series_count(&self) -> usize {
        let families = self.families.lock().expect("registry lock");
        families.values().map(|f| f.series.len()).sum()
    }

    /// Render every family in Prometheus text exposition format
    /// (version 0.0.4): `# HELP` / `# TYPE` once per family, then one
    /// line per series, cumulative buckets for histograms. Families
    /// and series come out name-sorted, so consecutive scrapes diff
    /// cleanly.
    pub fn render(&self) -> String {
        let families = self.families.lock().expect("registry lock");
        let mut out = String::with_capacity(4096);
        for (name, family) in families.iter() {
            out.push_str("# HELP ");
            out.push_str(name);
            out.push(' ');
            out.push_str(&escape_help(&family.help));
            out.push('\n');
            out.push_str("# TYPE ");
            out.push_str(name);
            out.push(' ');
            out.push_str(family.kind.as_str());
            out.push('\n');
            for (labelset, handle) in family.series.iter() {
                match handle {
                    Handle::Counter(c) => {
                        push_sample(&mut out, name, "", labelset, None, c.get() as f64);
                    }
                    Handle::Gauge(g) => {
                        push_sample(&mut out, name, "", labelset, None, g.get());
                    }
                    Handle::Histogram(h) => {
                        let mut cumulative = 0u64;
                        for (i, bound) in h.bounds.iter().enumerate() {
                            cumulative += h.counts[i].load(Ordering::Relaxed);
                            push_sample(
                                &mut out,
                                name,
                                "_bucket",
                                labelset,
                                Some(&format_f64(*bound)),
                                cumulative as f64,
                            );
                        }
                        cumulative += h.counts[h.bounds.len()].load(Ordering::Relaxed);
                        push_sample(
                            &mut out,
                            name,
                            "_bucket",
                            labelset,
                            Some("+Inf"),
                            cumulative as f64,
                        );
                        push_sample(&mut out, name, "_sum", labelset, None, h.sum());
                        push_sample(&mut out, name, "_count", labelset, None, cumulative as f64);
                    }
                }
            }
        }
        out
    }
}

/// Render `labels` in stable (key-sorted) order, escaped, without
/// braces: `method="GET",path="/x"`.
fn render_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut sorted: Vec<_> = labels.to_vec();
    sorted.sort_by_key(|(k, _)| *k);
    let mut out = String::new();
    for (i, (k, v)) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&escape_label(v));
        out.push('"');
    }
    out
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn escape_help(v: &str) -> String {
    v.replace('\\', "\\\\").replace('\n', "\\n")
}

/// One exposition value: integral floats print without a trailing
/// `.0` (Rust's `{}` already does this — `42f64` renders `42`).
fn format_f64(v: f64) -> String {
    format!("{v}")
}

fn push_sample(
    out: &mut String,
    name: &str,
    suffix: &str,
    labelset: &str,
    le: Option<&str>,
    value: f64,
) {
    out.push_str(name);
    out.push_str(suffix);
    let has_labels = !labelset.is_empty() || le.is_some();
    if has_labels {
        out.push('{');
        out.push_str(labelset);
        if let Some(le) = le {
            if !labelset.is_empty() {
                out.push(',');
            }
            out.push_str("le=\"");
            out.push_str(le);
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(&format_f64(value));
    out.push('\n');
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counter_counts_and_is_monotone_across_threads() {
        let c = Arc::new(Counter::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = Arc::clone(&c);
            handles.push(thread::spawn(move || {
                for _ in 0..1000 {
                    c.inc();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 8000);
    }

    #[test]
    fn gauge_set_add_sub() {
        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(4.5);
        g.add(1.0);
        g.sub(2.0);
        assert!((g.get() - 3.5).abs() < 1e-12);
        g.inc();
        g.dec();
        assert!((g.get() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets_observations_correctly() {
        let h = Histogram::new(&[0.1, 1.0, 10.0]);
        h.observe(0.05); // bucket 0 (le 0.1)
        h.observe(0.1); // boundary counts into its own bucket
        h.observe(0.5); // bucket 1
        h.observe(100.0); // +Inf
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 100.65).abs() < 1e-9);
        let text = {
            let r = Registry::new();
            let reg = r.histogram("h_seconds", "test", &[0.1, 1.0, 10.0]);
            reg.observe(0.05);
            reg.observe(0.1);
            reg.observe(0.5);
            reg.observe(100.0);
            r.render()
        };
        assert!(text.contains("h_seconds_bucket{le=\"0.1\"} 2"), "{text}");
        assert!(text.contains("h_seconds_bucket{le=\"1\"} 3"), "{text}");
        assert!(text.contains("h_seconds_bucket{le=\"10\"} 3"), "{text}");
        assert!(text.contains("h_seconds_bucket{le=\"+Inf\"} 4"), "{text}");
        assert!(text.contains("h_seconds_count 4"), "{text}");
    }

    #[test]
    fn histogram_sum_survives_concurrent_observes() {
        let h = Arc::new(Histogram::new(&[1.0]));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let h = Arc::clone(&h);
            handles.push(thread::spawn(move || {
                for _ in 0..1000 {
                    h.observe(0.5);
                }
            }));
        }
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 4000);
        assert!((h.sum() - 2000.0).abs() < 1e-6, "CAS loop lost updates");
    }

    #[test]
    fn quantile_interpolates_within_buckets() {
        let h = Histogram::new(&[1.0, 2.0, 4.0]);
        for _ in 0..50 {
            h.observe(0.5);
        }
        for _ in 0..50 {
            h.observe(1.5);
        }
        // Median sits exactly at the first bound.
        assert!((h.quantile(0.5) - 1.0).abs() < 1e-9, "{}", h.quantile(0.5));
        // p75 is halfway through the (1, 2] bucket.
        assert!(
            (h.quantile(0.75) - 1.5).abs() < 1e-9,
            "{}",
            h.quantile(0.75)
        );
        // Empty histogram has no quantiles.
        assert!(Histogram::new(&[1.0]).quantile(0.5).is_nan());
        // Ranks landing in +Inf clamp to the last finite bound.
        let inf = Histogram::new(&[1.0]);
        inf.observe(50.0);
        assert_eq!(inf.quantile(0.99), 1.0);
    }

    #[test]
    fn span_records_on_drop_and_discard_cancels() {
        let r = Registry::new();
        let h = r.histogram("span_seconds", "test", DURATION_BUCKETS);
        {
            let _s = h.start_span();
        }
        assert_eq!(h.count(), 1);
        let s = h.start_span();
        assert!(s.elapsed_secs() >= 0.0);
        s.discard();
        assert_eq!(h.count(), 1, "discarded span must not record");
    }

    #[test]
    fn registration_is_idempotent_and_kind_checked() {
        let r = Registry::new();
        let a = r.counter("x_total", "help");
        let b = r.counter("x_total", "other help ignored");
        a.inc();
        assert_eq!(b.get(), 1, "same handle returned");
        assert_eq!(r.series_count(), 1);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            r.gauge("x_total", "kind clash");
        }));
        assert!(result.is_err(), "kind mismatch must panic");
    }

    #[test]
    fn labeled_series_render_sorted_and_escaped() {
        let r = Registry::new();
        r.counter_with("req_total", "requests", &[("endpoint", "/a")])
            .add(2);
        r.counter_with("req_total", "requests", &[("endpoint", "/b\"x\\y")])
            .inc();
        let g = r.gauge_with("tput", "throughput", &[("worker", "w1"), ("addr", "h:1")]);
        g.set(46000.0);
        let text = r.render();
        assert!(text.contains("req_total{endpoint=\"/a\"} 2"), "{text}");
        assert!(
            text.contains("req_total{endpoint=\"/b\\\"x\\\\y\"} 1"),
            "escaping: {text}"
        );
        // Label keys sort: addr before worker.
        assert!(
            text.contains("tput{addr=\"h:1\",worker=\"w1\"} 46000"),
            "{text}"
        );
        let help_lines = text
            .lines()
            .filter(|l| l.starts_with("# HELP req_total"))
            .count();
        assert_eq!(help_lines, 1, "one header per family: {text}");
    }

    #[test]
    fn bind_counter_exposes_foreign_handle_and_rebind_replaces() {
        let r = Registry::new();
        let owned = Arc::new(Counter::new());
        owned.add(7);
        r.bind_counter("store_locks_total", "locks", Arc::clone(&owned));
        assert!(r.render().contains("store_locks_total 7"));
        owned.inc();
        assert!(
            r.render().contains("store_locks_total 8"),
            "same atomic, no copy"
        );
        let second = Arc::new(Counter::new());
        second.add(100);
        r.bind_counter("store_locks_total", "locks", second);
        assert!(
            r.render().contains("store_locks_total 100"),
            "latest binding wins"
        );
    }

    #[test]
    fn render_is_valid_exposition_shape() {
        let r = Registry::new();
        r.counter("a_total", "a").inc();
        r.gauge("b", "b").set(2.5);
        r.histogram("c_seconds", "c", &[0.5]).observe(0.1);
        let text = r.render();
        for line in text.lines() {
            assert!(!line.is_empty());
            if line.starts_with('#') {
                let mut parts = line.splitn(4, ' ');
                assert_eq!(parts.next(), Some("#"));
                let kind = parts.next().unwrap();
                assert!(kind == "HELP" || kind == "TYPE", "{line}");
                assert!(parts.next().is_some(), "{line}");
            } else {
                // `name{labels} value` or `name value`; value parses as f64.
                let value = line.rsplit(' ').next().unwrap();
                assert!(value.parse::<f64>().is_ok() || value == "+Inf", "{line}");
            }
        }
        // Families sorted by name.
        let names: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("# TYPE"))
            .map(|l| l.split(' ').nth(2).unwrap())
            .collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }

    #[test]
    fn exponential_buckets_ladder() {
        let b = exponential_buckets(1.0, 2.0, 5);
        assert_eq!(b, vec![1.0, 2.0, 4.0, 8.0, 16.0]);
    }

    #[test]
    fn global_registry_is_a_singleton() {
        let c = global().counter("telemetry_selftest_total", "self test");
        c.inc();
        let before = c.get();
        let again = global().counter("telemetry_selftest_total", "self test");
        again.inc();
        assert_eq!(again.get(), before + 1);
    }
}
