#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! Implementation of the `synapse` command-line tool.
//!
//! The paper ships "a set of command line tools which are wrappers
//! around certain configurations and combinations of the profile and
//! emulate methods" (§4). This crate provides the same:
//!
//! ```text
//! synapse profile  "<command>" [--tags k=v,...] [--rate HZ] [--store DIR]
//! synapse emulate  "<command>" [--tags k=v,...] [--kernel asm|c|spin]
//!                  [--threads N] [--write-block BYTES] [--store DIR]
//! synapse stats    "<command>" [--tags k=v,...] [--store DIR]
//! synapse inspect  "<command>" [--tags k=v,...] [--store DIR]
//! synapse campaign run  <spec.toml|json> [--cache DIR] [--workers N]
//!                  [--json PATH] [--csv PATH] [--summary-json PATH] [--timings]
//!                  [--record PATH]
//! synapse campaign plan <spec.toml|json>
//! synapse campaign replay <trace.jsonl> [--strict|--lenient] [--report PATH]
//! synapse campaign trace-summary <trace.jsonl>
//! synapse campaign cache stats|compact [--cache DIR]
//! synapse serve    [--addr HOST:PORT] [--cache DIR] [--queue-workers N] [--workers N]
//!                  [--max-connections N] [--reactor-threads N]
//! synapse cluster start [--addr HOST:PORT] [--cache DIR] [--worker ADDR]...
//! synapse cluster add-worker <ADDR> [--server HOST:PORT]
//! synapse cluster status [--server HOST:PORT]
//! synapse campaign submit <spec.toml|json> [--server HOST:PORT] [--watch] [--cluster]
//!                  [--record]
//! synapse campaign watch  <job-id> [--server HOST:PORT]
//! synapse campaign status [job-id] [--server HOST:PORT]
//! synapse campaign cancel <job-id> [--server HOST:PORT]
//! synapse table1
//! synapse machines
//! ```
//!
//! The `campaign` subcommand is the scenario-sweep frontend: a
//! declarative spec expands into the cartesian product of its axes and
//! runs through [`synapse_campaign`] with memoized results. `serve`
//! turns the same engine into a long-running daemon
//! ([`synapse_server`]); the `submit`/`watch`/`status`/`cancel`
//! actions are its HTTP client.

use std::path::PathBuf;

use synapse::config::ProfilerConfig;
use synapse::emulator::{EmulationPlan, KernelChoice};
use synapse_model::{metrics, Tags};
use synapse_store::{FileStore, ProfileStore};

/// Parsed command-line invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Invocation {
    /// Profile a command.
    Profile {
        /// The command to run and observe.
        command: String,
        /// Tags for the profile key.
        tags: Tags,
        /// Sampling rate in Hz.
        rate: f64,
        /// Profile store directory.
        store: PathBuf,
    },
    /// Emulate a profiled command.
    Emulate {
        /// The command whose profile to replay.
        command: String,
        /// Tags to match.
        tags: Tags,
        /// Kernel name (asm | c | spin).
        kernel: String,
        /// Worker width (threads or processes, depending on mode).
        threads: u32,
        /// Parallel mode (openmp | mpi).
        mode: String,
        /// Write block size in bytes.
        write_block: u64,
        /// Profile store directory.
        store: PathBuf,
    },
    /// Internal: consume a cycle budget as an MPI-analogue worker
    /// process (spawned by the emulator, not by users).
    Worker {
        /// Kernel name.
        kernel: String,
        /// Cycles to consume.
        cycles: u64,
    },
    /// Print statistics over stored profiles of a command.
    Stats {
        /// Command to look up.
        command: String,
        /// Tags to match.
        tags: Tags,
        /// Profile store directory.
        store: PathBuf,
    },
    /// Dump the representative profile of a command.
    Inspect {
        /// Command to look up.
        command: String,
        /// Tags to match.
        tags: Tags,
        /// Profile store directory.
        store: PathBuf,
    },
    /// Run a scenario-sweep campaign from a declarative spec.
    CampaignRun {
        /// Path to the TOML/JSON campaign spec.
        spec: PathBuf,
        /// Result-cache directory (memoization across runs).
        cache: PathBuf,
        /// Worker threads (0 = auto).
        workers: usize,
        /// Optional JSON report output path.
        json_out: Option<PathBuf>,
        /// Optional CSV report output path.
        csv_out: Option<PathBuf>,
        /// Optional machine-readable run-summary output path (cache
        /// hit rate, throughput) for scripts and CI.
        summary_json: Option<PathBuf>,
        /// Print a per-stage wall-time and per-point latency
        /// breakdown after the run summary.
        timings: bool,
        /// Optional flight-recorder trace output path (versioned
        /// `.jsonl` causal event stream; see `docs/TRACE.md`).
        record: Option<PathBuf>,
    },
    /// Show what a campaign spec expands into without running it.
    CampaignPlan {
        /// Path to the TOML/JSON campaign spec.
        spec: PathBuf,
    },
    /// Replay a recorded trace through the observer seam without
    /// simulating, validating the causal stream.
    CampaignReplay {
        /// Path to a recorded `.jsonl` trace.
        trace: PathBuf,
        /// Collect divergences into an audit summary instead of
        /// failing on the first one (`--lenient`).
        lenient: bool,
        /// Optional reconstructed-report output path (`.csv` writes
        /// CSV, anything else the pretty JSON report).
        report: Option<PathBuf>,
    },
    /// Print a recorded trace's provenance, per-stage walls, and
    /// per-worker lease timelines.
    CampaignTraceSummary {
        /// Path to a recorded `.jsonl` trace.
        trace: PathBuf,
    },
    /// Run the long-lived campaign server (`synapse serve`).
    Serve {
        /// Bind address (`host:port`).
        addr: String,
        /// Result-cache directory shared by every job.
        cache: PathBuf,
        /// Concurrent jobs (queue workers).
        queue_workers: usize,
        /// Worker threads per job's sweep (0 = auto).
        workers: usize,
        /// Concurrent-connection cap (0 = unlimited).
        max_connections: usize,
        /// Handler-pool threads behind the epoll reactor (0 = default).
        reactor_threads: usize,
        /// Points per lease-stream batch frame (1 = per-point events).
        batch_points: usize,
    },
    /// Run a cluster coordinator: a serve process that fans
    /// `--cluster` submissions out over registered workers.
    ClusterStart {
        /// Bind address (`host:port`).
        addr: String,
        /// Result-cache directory (also used by locally-run leases).
        cache: PathBuf,
        /// Concurrent jobs (queue workers).
        queue_workers: usize,
        /// Worker threads per locally-run lease sweep (0 = auto).
        workers: usize,
        /// Concurrent-connection cap (0 = unlimited).
        max_connections: usize,
        /// Handler-pool threads behind the epoll reactor (0 = default).
        reactor_threads: usize,
        /// Points per lease-stream batch frame (1 = per-point events).
        batch_points: usize,
        /// Worker serve addresses registered at startup.
        worker_addrs: Vec<String>,
    },
    /// Register a worker with a running coordinator.
    ClusterAddWorker {
        /// The worker's serve address (`host:port`).
        worker: String,
        /// Coordinator address.
        server: String,
    },
    /// Print a coordinator's worker-registry status document.
    ClusterStatus {
        /// Coordinator address.
        server: String,
    },
    /// Submit a spec to a running server, optionally streaming events.
    CampaignSubmit {
        /// Path to the TOML/JSON campaign spec.
        spec: PathBuf,
        /// Server address (`host:port`).
        server: String,
        /// Follow the job's NDJSON event stream until it ends.
        watch: bool,
        /// Fan out across the coordinator's registered workers.
        cluster: bool,
        /// Ask the server to flight-record the job (`?record=1`);
        /// fetch the sealed trace with `GET /campaigns/<id>/trace`.
        record: bool,
    },
    /// Stream a submitted job's NDJSON events until it ends.
    CampaignWatch {
        /// Job id (`j1`, ...).
        id: String,
        /// Server address.
        server: String,
        /// Follow the aggregate ring (`?aggregates=1`): lifecycle +
        /// snapshot deltas only, no per-point lines.
        aggregates: bool,
    },
    /// Print a job's live aggregate view (answerable mid-sweep).
    CampaignAggregates {
        /// Job id.
        id: String,
        /// Server address.
        server: String,
        /// Restrict the slice table to one report axis.
        axis: Option<String>,
        /// Restrict per-slice stats to one metric.
        metric: Option<String>,
        /// Emit the raw JSON document instead of the table.
        json: bool,
    },
    /// Print a job's status document (or all jobs without an id).
    CampaignStatus {
        /// Job id; `None` lists every job.
        id: Option<String>,
        /// Server address.
        server: String,
    },
    /// Request cooperative cancellation of a submitted job.
    CampaignCancel {
        /// Job id.
        id: String,
        /// Server address.
        server: String,
    },
    /// Print shape and size of a campaign result cache.
    CampaignCacheStats {
        /// Result-cache directory.
        cache: PathBuf,
    },
    /// Merge small shard files of a campaign result cache.
    CampaignCacheCompact {
        /// Result-cache directory.
        cache: PathBuf,
    },
    /// Print the Table 1 metric registry.
    Table1,
    /// List the built-in machine models.
    Machines,
    /// Print usage.
    Help,
}

/// Default profile store location.
pub fn default_store() -> PathBuf {
    std::env::temp_dir().join("synapse-profiles")
}

/// Default campaign result-cache location.
pub fn default_campaign_cache() -> PathBuf {
    std::env::temp_dir().join("synapse-campaign-cache")
}

/// Default `synapse serve` address client subcommands talk to.
pub const DEFAULT_SERVER_ADDR: &str = "127.0.0.1:8787";

/// Parse the shared `serve`/`cluster start` flag set; `cluster`
/// additionally accepts repeatable `--worker ADDR` registrations.
fn parse_serve_like_args(args: &[String], cluster: bool) -> Result<Invocation, String> {
    let mut addr = DEFAULT_SERVER_ADDR.to_string();
    let mut cache = default_campaign_cache();
    let mut queue_workers = 2usize;
    let mut workers = 0usize;
    let mut max_connections = synapse_server::DEFAULT_MAX_CONNECTIONS;
    let mut reactor_threads = 0usize;
    let mut batch_points = synapse_server::DEFAULT_BATCH_POINTS;
    let mut worker_addrs: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        let value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("missing value after {arg}"))
        };
        match arg.as_str() {
            "--addr" => addr = value(&mut i)?,
            "--cache" => cache = PathBuf::from(value(&mut i)?),
            "--queue-workers" => {
                queue_workers = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--queue-workers: {e}"))?
            }
            "--workers" => {
                workers = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--max-connections" => {
                max_connections = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--max-connections: {e}"))?
            }
            "--reactor-threads" => {
                reactor_threads = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--reactor-threads: {e}"))?
            }
            "--batch-points" => {
                batch_points = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--batch-points: {e}"))?
            }
            "--worker" if cluster => worker_addrs.push(value(&mut i)?),
            other => {
                return Err(format!(
                    "unknown {} argument {other:?}",
                    if cluster { "cluster start" } else { "serve" }
                ))
            }
        }
        i += 1;
    }
    if queue_workers == 0 {
        return Err("--queue-workers must be at least 1".into());
    }
    if batch_points == 0 {
        return Err("--batch-points must be at least 1".into());
    }
    Ok(if cluster {
        Invocation::ClusterStart {
            addr,
            cache,
            queue_workers,
            workers,
            max_connections,
            reactor_threads,
            batch_points,
            worker_addrs,
        }
    } else {
        Invocation::Serve {
            addr,
            cache,
            queue_workers,
            workers,
            max_connections,
            reactor_threads,
            batch_points,
        }
    })
}

/// Parse the `cluster <action>` argument forms.
fn parse_cluster_args(args: &[String]) -> Result<Invocation, String> {
    let action = args
        .first()
        .ok_or("cluster requires an action (start | add-worker | status)")?;
    let rest = &args[1..];
    match action.as_str() {
        "start" => parse_serve_like_args(rest, true),
        "add-worker" | "status" => {
            let mut server = DEFAULT_SERVER_ADDR.to_string();
            let mut positional = None;
            let mut i = 0;
            while i < rest.len() {
                let arg = &rest[i];
                match arg.as_str() {
                    "--server" => {
                        i += 1;
                        server = rest
                            .get(i)
                            .cloned()
                            .ok_or_else(|| format!("missing value after {arg}"))?;
                    }
                    other if other.starts_with("--") => {
                        return Err(format!("unknown cluster {action} flag {other}"))
                    }
                    other => {
                        if positional.is_some() {
                            return Err(format!("unexpected positional argument {other:?}"));
                        }
                        positional = Some(other.to_string());
                    }
                }
                i += 1;
            }
            match action.as_str() {
                "add-worker" => Ok(Invocation::ClusterAddWorker {
                    worker: positional.ok_or("cluster add-worker requires a worker address")?,
                    server,
                }),
                _ => {
                    if positional.is_some() {
                        return Err("cluster status takes no positional argument".into());
                    }
                    Ok(Invocation::ClusterStatus { server })
                }
            }
        }
        other => Err(format!(
            "unknown cluster action {other} (start | add-worker | status)"
        )),
    }
}

/// Parse the `campaign submit|watch|status|cancel|aggregates` client
/// forms.
fn parse_campaign_client_args(action: &str, args: &[String]) -> Result<Invocation, String> {
    let mut server = DEFAULT_SERVER_ADDR.to_string();
    let mut watch = false;
    let mut cluster = false;
    let mut record = false;
    let mut aggregates = false;
    let mut axis = None;
    let mut metric = None;
    let mut json = false;
    let mut positional = None;
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        match arg.as_str() {
            "--server" => {
                i += 1;
                server = args
                    .get(i)
                    .cloned()
                    .ok_or_else(|| format!("missing value after {arg}"))?;
            }
            "--watch" if action == "submit" => watch = true,
            "--cluster" if action == "submit" => cluster = true,
            "--record" if action == "submit" => record = true,
            "--aggregates" if action == "watch" => aggregates = true,
            "--axis" if action == "aggregates" => {
                i += 1;
                axis = Some(
                    args.get(i)
                        .cloned()
                        .ok_or_else(|| format!("missing value after {arg}"))?,
                );
            }
            "--metric" if action == "aggregates" => {
                i += 1;
                metric = Some(
                    args.get(i)
                        .cloned()
                        .ok_or_else(|| format!("missing value after {arg}"))?,
                );
            }
            "--json" if action == "aggregates" => json = true,
            other if other.starts_with("--") => {
                return Err(format!("unknown campaign {action} flag {other}"))
            }
            other => {
                if positional.is_some() {
                    return Err(format!("unexpected positional argument {other:?}"));
                }
                positional = Some(other.to_string());
            }
        }
        i += 1;
    }
    match action {
        "submit" => Ok(Invocation::CampaignSubmit {
            spec: PathBuf::from(positional.ok_or("campaign submit requires a spec file")?),
            server,
            watch,
            cluster,
            record,
        }),
        "watch" => Ok(Invocation::CampaignWatch {
            id: positional.ok_or("campaign watch requires a job id")?,
            server,
            aggregates,
        }),
        "aggregates" => Ok(Invocation::CampaignAggregates {
            id: positional.ok_or("campaign aggregates requires a job id")?,
            server,
            axis,
            metric,
            json,
        }),
        "status" => Ok(Invocation::CampaignStatus {
            id: positional,
            server,
        }),
        "cancel" => Ok(Invocation::CampaignCancel {
            id: positional.ok_or("campaign cancel requires a job id")?,
            server,
        }),
        other => Err(format!("unknown campaign client action {other}")),
    }
}

/// Parse the `campaign <action> <spec>` argument form.
fn parse_campaign_args(args: &[String]) -> Result<Invocation, String> {
    let action = args.first().ok_or(
        "campaign requires an action (run | plan | replay | trace-summary | submit | watch | status | cancel | aggregates | cache)",
    )?;
    if action == "cache" {
        return parse_campaign_cache_args(&args[1..]);
    }
    if ["replay", "trace-summary"].contains(&action.as_str()) {
        return parse_campaign_trace_args(action, &args[1..]);
    }
    if ["submit", "watch", "status", "cancel", "aggregates"].contains(&action.as_str()) {
        return parse_campaign_client_args(action, &args[1..]);
    }
    let mut spec = None;
    let mut cache = default_campaign_cache();
    let mut workers = 0usize;
    let mut json_out = None;
    let mut csv_out = None;
    let mut summary_json = None;
    let mut timings = false;
    let mut record = None;
    let mut i = 1;
    while i < args.len() {
        let arg = &args[i];
        let value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("missing value after {arg}"))
        };
        match arg.as_str() {
            "--cache" => cache = PathBuf::from(value(&mut i)?),
            "--workers" => {
                workers = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--json" => json_out = Some(PathBuf::from(value(&mut i)?)),
            "--csv" => csv_out = Some(PathBuf::from(value(&mut i)?)),
            "--summary-json" => summary_json = Some(PathBuf::from(value(&mut i)?)),
            "--timings" => timings = true,
            "--record" => record = Some(PathBuf::from(value(&mut i)?)),
            other if other.starts_with("--") => return Err(format!("unknown flag {other}")),
            other => {
                if spec.is_some() {
                    return Err(format!("unexpected positional argument {other:?}"));
                }
                spec = Some(PathBuf::from(other));
            }
        }
        i += 1;
    }
    let spec = spec.ok_or("campaign requires a spec file argument")?;
    match action.as_str() {
        "run" => Ok(Invocation::CampaignRun {
            spec,
            cache,
            workers,
            json_out,
            csv_out,
            summary_json,
            timings,
            record,
        }),
        "plan" => Ok(Invocation::CampaignPlan { spec }),
        other => Err(format!(
            "unknown campaign action {other} (run | plan | replay | trace-summary | submit | watch | status | cancel | aggregates | cache)"
        )),
    }
}

/// Parse the `campaign replay|trace-summary <trace.jsonl>` forms.
fn parse_campaign_trace_args(action: &str, args: &[String]) -> Result<Invocation, String> {
    let mut trace = None;
    let mut lenient = false;
    let mut report = None;
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        match arg.as_str() {
            "--strict" if action == "replay" => lenient = false,
            "--lenient" if action == "replay" => lenient = true,
            "--report" if action == "replay" => {
                i += 1;
                report = Some(PathBuf::from(
                    args.get(i)
                        .ok_or_else(|| format!("missing value after {arg}"))?,
                ));
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown campaign {action} flag {other}"))
            }
            other => {
                if trace.is_some() {
                    return Err(format!("unexpected positional argument {other:?}"));
                }
                trace = Some(PathBuf::from(other));
            }
        }
        i += 1;
    }
    let trace = trace.ok_or_else(|| format!("campaign {action} requires a trace file"))?;
    match action {
        "replay" => Ok(Invocation::CampaignReplay {
            trace,
            lenient,
            report,
        }),
        "trace-summary" => Ok(Invocation::CampaignTraceSummary { trace }),
        other => Err(format!("unknown campaign trace action {other}")),
    }
}

/// Parse the `campaign cache <action>` argument form.
fn parse_campaign_cache_args(args: &[String]) -> Result<Invocation, String> {
    let action = args
        .first()
        .ok_or("campaign cache requires an action (stats | compact)")?;
    let mut cache = default_campaign_cache();
    let mut i = 1;
    while i < args.len() {
        let arg = &args[i];
        match arg.as_str() {
            "--cache" => {
                i += 1;
                cache = PathBuf::from(
                    args.get(i)
                        .ok_or_else(|| format!("missing value after {arg}"))?,
                );
            }
            other => return Err(format!("unexpected campaign cache argument {other:?}")),
        }
        i += 1;
    }
    match action.as_str() {
        "stats" => Ok(Invocation::CampaignCacheStats { cache }),
        "compact" => Ok(Invocation::CampaignCacheCompact { cache }),
        other => Err(format!(
            "unknown campaign cache action {other} (stats | compact)"
        )),
    }
}

/// Parse CLI arguments (without the binary name).
pub fn parse_args(args: &[String]) -> Result<Invocation, String> {
    let Some(sub) = args.first() else {
        return Ok(Invocation::Help);
    };
    if sub == "campaign" {
        return parse_campaign_args(&args[1..]);
    }
    if sub == "serve" {
        return parse_serve_like_args(&args[1..], false);
    }
    if sub == "cluster" {
        return parse_cluster_args(&args[1..]);
    }
    let mut command = None;
    let mut tags = Tags::new();
    let mut rate = 10.0;
    let mut store = default_store();
    let mut kernel = "asm".to_string();
    let mut threads = 1u32;
    let mut mode = "openmp".to_string();
    let mut write_block = 1u64 << 20;
    let mut cycles = 0u64;

    let mut i = 1;
    while i < args.len() {
        let arg = &args[i];
        let value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("missing value after {arg}"))
        };
        match arg.as_str() {
            "--tags" => tags = Tags::parse(&value(&mut i)?),
            "--rate" => rate = value(&mut i)?.parse().map_err(|e| format!("--rate: {e}"))?,
            "--store" => store = PathBuf::from(value(&mut i)?),
            "--kernel" => kernel = value(&mut i)?,
            "--threads" => {
                threads = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--mode" => mode = value(&mut i)?,
            "--cycles" => {
                cycles = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--cycles: {e}"))?
            }
            "--write-block" => {
                write_block = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--write-block: {e}"))?
            }
            other if other.starts_with("--") => return Err(format!("unknown flag {other}")),
            other => {
                if command.is_some() {
                    return Err(format!(
                        "unexpected positional argument {other:?} (quote the command)"
                    ));
                }
                command = Some(other.to_string());
            }
        }
        i += 1;
    }

    let need_command = |what: &str| {
        command
            .clone()
            .ok_or_else(|| format!("{what} requires a command argument"))
    };
    match sub.as_str() {
        "profile" => Ok(Invocation::Profile {
            command: need_command("profile")?,
            tags,
            rate,
            store,
        }),
        "emulate" => Ok(Invocation::Emulate {
            command: need_command("emulate")?,
            tags,
            kernel,
            threads,
            mode,
            write_block,
            store,
        }),
        "worker" => Ok(Invocation::Worker { kernel, cycles }),
        "stats" => Ok(Invocation::Stats {
            command: need_command("stats")?,
            tags,
            store,
        }),
        "inspect" => Ok(Invocation::Inspect {
            command: need_command("inspect")?,
            tags,
            store,
        }),
        "table1" => Ok(Invocation::Table1),
        "machines" => Ok(Invocation::Machines),
        "help" | "--help" | "-h" => Ok(Invocation::Help),
        other => Err(format!("unknown subcommand {other}")),
    }
}

/// Resolve a kernel name to a [`KernelChoice`].
pub fn kernel_by_name(name: &str) -> Result<KernelChoice, String> {
    match name.to_ascii_lowercase().as_str() {
        "asm" => Ok(KernelChoice::Asm),
        "c" => Ok(KernelChoice::C),
        "spin" => Ok(KernelChoice::Spin),
        other => Err(format!("unknown kernel {other} (asm | c | spin)")),
    }
}

/// Usage text.
pub const USAGE: &str = "\
synapse — synthetic application profiler and emulator

USAGE:
  synapse profile  \"<command>\" [--tags k=v,...] [--rate HZ] [--store DIR]
  synapse emulate  \"<command>\" [--tags k=v,...] [--kernel asm|c|spin]
                   [--threads N] [--mode openmp|mpi] [--write-block BYTES]
                   [--store DIR]
  synapse stats    \"<command>\" [--tags k=v,...] [--store DIR]
  synapse inspect  \"<command>\" [--tags k=v,...] [--store DIR]
  synapse campaign run  <spec.toml|json> [--cache DIR] [--workers N]
                   [--json PATH] [--csv PATH] [--summary-json PATH] [--timings]
                   [--record PATH]
  synapse campaign plan <spec.toml|json>
  synapse campaign replay <trace.jsonl> [--strict|--lenient] [--report PATH]
  synapse campaign trace-summary <trace.jsonl>
  synapse campaign cache stats|compact [--cache DIR]
  synapse serve    [--addr HOST:PORT] [--cache DIR] [--queue-workers N]
                   [--workers N] [--max-connections N] [--reactor-threads N]
                   [--batch-points N]
  synapse cluster start [--addr HOST:PORT] [--cache DIR] [--worker ADDR]...
                   [--queue-workers N] [--workers N] [--max-connections N]
                   [--reactor-threads N] [--batch-points N]
  synapse cluster add-worker <ADDR> [--server HOST:PORT]
  synapse cluster status [--server HOST:PORT]
  synapse campaign submit <spec.toml|json> [--server HOST:PORT] [--watch]
                   [--cluster] [--record]
  synapse campaign watch  <job-id> [--server HOST:PORT] [--aggregates]
  synapse campaign status [job-id] [--server HOST:PORT]
  synapse campaign cancel <job-id> [--server HOST:PORT]
  synapse campaign aggregates <job-id> [--server HOST:PORT]
                   [--axis AXIS] [--metric METRIC] [--json]
  synapse table1
  synapse machines

The serve/submit/watch/status/cancel commands form the client/server
mode: `serve` keeps one process (and one warm result cache) alive;
`submit --watch` streams per-point NDJSON events as the sweep runs.
`campaign watch --aggregates` follows the lifecycle + snapshot-delta
stream instead (O(slices), not O(points)), and
`campaign aggregates <id>` prints the live per-(axis, value) stats
table mid-sweep or after.
`cluster start` runs a coordinator; plain `serve` processes are its
workers (registered with `--worker`/`add-worker`), and
`campaign submit --cluster` fans one campaign out across all of them,
merging the streams into one ordered feed and one byte-stable report.

`campaign run --record` flight-records the sweep's causal event
stream as a versioned .jsonl trace (docs/TRACE.md); `campaign replay`
re-drives it without simulating — strict mode errors on the first
divergence (the CI gate), `--lenient` collects them as an audit
summary — and `--report` reconstructs the byte-identical report from
the record alone. `submit --record` asks the server to record; the
sealed trace is served at GET /campaigns/<id>/trace.
";

/// Stream a job's NDJSON events to `out` until it reaches a terminal
/// state, erroring (nonzero exit) when the job failed.
fn stream_job_events(
    client: &synapse_server::Client,
    id: &str,
    aggregates: bool,
    out: &mut impl std::io::Write,
) -> Result<(), String> {
    let mut write_err: Option<std::io::Error> = None;
    let deliver = |line: &str| {
        // Flush per line: watchers are typically piped into
        // `jq`/logs and want events as they land. A dead pipe
        // (`... | head`) aborts the watch instead of silently
        // draining the rest of the sweep.
        if let Err(e) = writeln!(out, "{line}").and_then(|()| out.flush()) {
            write_err = Some(e);
        }
        write_err.is_none()
    };
    let last = if aggregates {
        client.watch_aggregates(id, deliver)
    } else {
        client.watch(id, deliver)
    }
    .map_err(|e| e.to_string())?;
    if let Some(e) = write_err {
        // Truncating a watch stream (`... | head`) is routine, not an
        // error; other write failures still exit nonzero.
        return if e.kind() == std::io::ErrorKind::BrokenPipe {
            Ok(())
        } else {
            Err(e.to_string())
        };
    }
    match last["event"].as_str() {
        Some("failed") => Err(last["error"]
            .as_str()
            .map(|m| format!("campaign {id} failed: {m}"))
            .unwrap_or_else(|| format!("campaign {id} failed"))),
        _ => Ok(()),
    }
}

/// Render a `GET /campaigns/<id>/aggregates` document as the human
/// table `campaign aggregates` prints: a header line with job identity
/// and sweep progress, then one row per (axis, value, metric) slice —
/// overall first — with count, mean and the sketch quantiles.
fn render_aggregates_table(doc: &serde_json::Value) -> String {
    use std::fmt::Write as _;
    let mut text = String::new();
    let _ = writeln!(
        text,
        "{} {:?} {} — {}/{} points aggregated ({} observed)",
        doc["id"].as_str().unwrap_or("?"),
        doc["name"].as_str().unwrap_or("?"),
        doc["status"].as_str().unwrap_or("?"),
        doc["done"].as_u64().unwrap_or(0),
        doc["total"].as_u64().unwrap_or(0),
        doc["points"].as_u64().unwrap_or(0),
    );
    let _ = writeln!(
        text,
        "{:<13} {:<14} {:<10} {:>7} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "AXIS", "VALUE", "METRIC", "N", "MEAN", "P50", "P95", "P99", "MIN", "MAX",
    );
    let mut row = |axis: &str, value: &str, metrics: &serde_json::Value| {
        let Some(metrics) = metrics.as_object() else {
            return;
        };
        for (metric, stats) in metrics {
            if stats["n"].as_u64() == Some(0) {
                continue;
            }
            let _ = write!(
                text,
                "{:<13} {:<14} {:<10} {:>7}",
                axis,
                value,
                metric,
                stats["n"].as_u64().unwrap_or(0),
            );
            for key in ["mean", "p50", "p95", "p99", "min", "max"] {
                let _ = write!(text, " {:>10.4}", stats[key].as_f64().unwrap_or(f64::NAN));
            }
            text.push('\n');
        }
    };
    row("(overall)", "-", &doc["overall"]["metrics"]);
    if let Some(slices) = doc["slices"].as_array() {
        for slice in slices {
            row(
                slice["axis"].as_str().unwrap_or("?"),
                slice["value"].as_str().unwrap_or("?"),
                &slice["metrics"],
            );
        }
    }
    text
}

/// Execute an invocation, writing human-readable output to `out`.
pub fn run(invocation: Invocation, out: &mut impl std::io::Write) -> Result<(), String> {
    match invocation {
        Invocation::Help => {
            write!(out, "{USAGE}").map_err(|e| e.to_string())?;
        }
        Invocation::Table1 => {
            write!(out, "{}", metrics::render_table1()).map_err(|e| e.to_string())?;
        }
        Invocation::Machines => {
            for name in synapse_sim::MACHINE_NAMES {
                let m = synapse_sim::machine_by_name(name).expect("catalog name");
                writeln!(
                    out,
                    "{:<10} {:>2} cores  {:>5.2} GHz nominal  {:>6.1} GiB  default fs: {}",
                    m.name,
                    m.cpu.ncores,
                    m.cpu.nominal_freq_hz / 1e9,
                    m.total_memory as f64 / (1u64 << 30) as f64,
                    m.default_fs.name(),
                )
                .map_err(|e| e.to_string())?;
            }
        }
        Invocation::Profile {
            command,
            tags,
            rate,
            store,
        } => {
            let store = FileStore::open(&store).map_err(|e| e.to_string())?;
            let config = ProfilerConfig::with_rate(rate);
            let outcome = synapse::api::profile(&command, Some(tags), &store, &config)
                .map_err(|e| e.to_string())?;
            let totals = outcome.profile.totals();
            writeln!(
                out,
                "profiled {:?}: Tx={:.3}s exit={} samples={} cycles={} bytes_written={}",
                command,
                outcome.profile.runtime,
                outcome.timed.exit_code,
                outcome.profile.len(),
                totals.cycles,
                totals.bytes_written,
            )
            .map_err(|e| e.to_string())?;
        }
        Invocation::Worker { kernel, cycles } => {
            let run = kernel_by_name(&kernel)?.build().execute_cycles(cycles);
            writeln!(out, "consumed={}", run.consumed_cycles).map_err(|e| e.to_string())?;
        }
        Invocation::Emulate {
            command,
            tags,
            kernel,
            threads,
            mode,
            write_block,
            store,
        } => {
            let store = FileStore::open(&store).map_err(|e| e.to_string())?;
            let mode = match mode.to_ascii_lowercase().as_str() {
                "openmp" | "omp" => synapse_sim::ParallelMode::OpenMp,
                "mpi" | "openmpi" => synapse_sim::ParallelMode::Mpi,
                other => return Err(format!("unknown mode {other} (openmp | mpi)")),
            };
            let plan = EmulationPlan {
                kernel: kernel_by_name(&kernel)?,
                threads,
                mode,
                // MPI-analogue workers re-invoke this very binary.
                worker_binary: std::env::current_exe().ok(),
                io_write_block: write_block,
                ..Default::default()
            };
            let report = synapse::api::emulate(&command, Some(tags), &store, &plan)
                .map_err(|e| e.to_string())?;
            writeln!(
                out,
                "emulated {:?}: Tx={:.3}s samples={} directed_cycles={} consumed_cycles={}",
                command,
                report.tx,
                report.samples,
                report.consumed.directed_cycles,
                report.consumed.cycles,
            )
            .map_err(|e| e.to_string())?;
        }
        Invocation::Serve {
            addr,
            cache,
            queue_workers,
            workers,
            max_connections,
            reactor_threads,
            batch_points,
        } => {
            let config = synapse_server::ServerConfig {
                addr,
                cache_dir: Some(cache.clone()),
                queue_workers,
                job_workers: workers,
                max_connections,
                handler_threads: reactor_threads,
                batch_points,
                ..Default::default()
            };
            let server = synapse_server::Server::bind(config).map_err(|e| e.to_string())?;
            let bound = server.local_addr().map_err(|e| e.to_string())?;
            writeln!(
                out,
                "synapse serve listening on {bound} (cache {}, {queue_workers} queue workers)",
                cache.display(),
            )
            .map_err(|e| e.to_string())?;
            out.flush().map_err(|e| e.to_string())?;
            server.run().map_err(|e| e.to_string())?;
            writeln!(out, "synapse serve shut down").map_err(|e| e.to_string())?;
        }
        Invocation::ClusterStart {
            addr,
            cache,
            queue_workers,
            workers,
            max_connections,
            reactor_threads,
            batch_points,
            worker_addrs,
        } => {
            let config = synapse_server::ServerConfig {
                addr,
                cache_dir: Some(cache.clone()),
                queue_workers,
                job_workers: workers,
                max_connections,
                handler_threads: reactor_threads,
                batch_points,
                ..Default::default()
            };
            let coordinator = std::sync::Arc::new(synapse_cluster::Coordinator::new(
                synapse_cluster::ClusterConfig::default(),
            ));
            for worker in &worker_addrs {
                coordinator.registry().register(worker);
            }
            let server = synapse_server::Server::bind(config)
                .map_err(|e| e.to_string())?
                .with_cluster(coordinator);
            let bound = server.local_addr().map_err(|e| e.to_string())?;
            writeln!(
                out,
                "synapse cluster coordinator listening on {bound} (cache {}, {} workers registered)",
                cache.display(),
                worker_addrs.len(),
            )
            .map_err(|e| e.to_string())?;
            out.flush().map_err(|e| e.to_string())?;
            server.run().map_err(|e| e.to_string())?;
            writeln!(out, "synapse cluster coordinator shut down").map_err(|e| e.to_string())?;
        }
        Invocation::ClusterAddWorker { worker, server } => {
            let client = synapse_server::Client::new(server);
            let doc = client.register_worker(&worker).map_err(|e| e.to_string())?;
            writeln!(
                out,
                "{}",
                serde_json::to_string(&doc).map_err(|e| e.to_string())?
            )
            .map_err(|e| e.to_string())?;
        }
        Invocation::ClusterStatus { server } => {
            let client = synapse_server::Client::new(server);
            let doc = client.cluster_status().map_err(|e| e.to_string())?;
            writeln!(
                out,
                "{}",
                serde_json::to_string(&doc).map_err(|e| e.to_string())?
            )
            .map_err(|e| e.to_string())?;
        }
        Invocation::CampaignSubmit {
            spec,
            server,
            watch,
            cluster,
            record,
        } => {
            let text = std::fs::read_to_string(&spec).map_err(|e| e.to_string())?;
            let client = synapse_server::Client::new(server);
            if record {
                // Recorded submits ack first (the ack carries the
                // trace id); `--watch` then follows the stream on a
                // second connection. Fetch the sealed trace afterwards
                // with `GET /campaigns/<id>/trace`.
                let ack = client
                    .submit_recorded(&text, cluster)
                    .map_err(|e| e.to_string())?;
                writeln!(
                    out,
                    "{}",
                    serde_json::to_string(&ack).map_err(|e| e.to_string())?
                )
                .map_err(|e| e.to_string())?;
                if watch {
                    let id = ack["id"]
                        .as_str()
                        .ok_or("submit ack carries no job id")?
                        .to_string();
                    stream_job_events(&client, &id, false, out)?;
                }
            } else if watch {
                // Submit and stream on ONE connection (`?watch=1`):
                // the ack is the stream's first line, events follow.
                let mut write_err: Option<std::io::Error> = None;
                let deliver = |line: &str| {
                    if let Err(e) = writeln!(out, "{line}").and_then(|()| out.flush()) {
                        write_err = Some(e);
                    }
                    write_err.is_none()
                };
                let watched = if cluster {
                    client.submit_watch_distributed(&text, deliver)
                } else {
                    client.submit_watch(&text, deliver)
                };
                // Check the pipe BEFORE the protocol outcome: a dead
                // stdout (`... | head`) aborts the stream client-side,
                // which surfaces as a protocol error from submit_watch
                // — but truncating a watch is routine, not an error.
                if let Some(e) = write_err {
                    return if e.kind() == std::io::ErrorKind::BrokenPipe {
                        Ok(())
                    } else {
                        Err(e.to_string())
                    };
                }
                let (_ack, summary) = watched.map_err(|e| e.to_string())?;
                if summary["event"].as_str() == Some("failed") {
                    return Err(summary["error"]
                        .as_str()
                        .map(|m| format!("campaign failed: {m}"))
                        .unwrap_or_else(|| "campaign failed".into()));
                }
            } else {
                let reply = if cluster {
                    client
                        .submit_distributed(&text)
                        .map_err(|e| e.to_string())?
                } else {
                    client.submit(&text).map_err(|e| e.to_string())?
                };
                writeln!(
                    out,
                    "{}",
                    serde_json::to_string(&reply).map_err(|e| e.to_string())?
                )
                .map_err(|e| e.to_string())?;
            }
        }
        Invocation::CampaignWatch {
            id,
            server,
            aggregates,
        } => {
            let client = synapse_server::Client::new(server);
            stream_job_events(&client, &id, aggregates, out)?;
        }
        Invocation::CampaignAggregates {
            id,
            server,
            axis,
            metric,
            json,
        } => {
            let client = synapse_server::Client::new(server);
            let doc = client
                .aggregates(&id, axis.as_deref(), metric.as_deref())
                .map_err(|e| e.to_string())?;
            if json {
                writeln!(
                    out,
                    "{}",
                    serde_json::to_string(&doc).map_err(|e| e.to_string())?
                )
                .map_err(|e| e.to_string())?;
            } else {
                write!(out, "{}", render_aggregates_table(&doc)).map_err(|e| e.to_string())?;
            }
        }
        Invocation::CampaignStatus { id, server } => {
            let client = synapse_server::Client::new(server);
            let doc = match id {
                Some(id) => client.status(&id).map_err(|e| e.to_string())?,
                None => client.list().map_err(|e| e.to_string())?,
            };
            writeln!(
                out,
                "{}",
                serde_json::to_string(&doc).map_err(|e| e.to_string())?
            )
            .map_err(|e| e.to_string())?;
        }
        Invocation::CampaignCancel { id, server } => {
            let client = synapse_server::Client::new(server);
            let doc = client.cancel(&id).map_err(|e| e.to_string())?;
            writeln!(
                out,
                "{}",
                serde_json::to_string(&doc).map_err(|e| e.to_string())?
            )
            .map_err(|e| e.to_string())?;
        }
        Invocation::CampaignPlan { spec } => {
            let spec =
                synapse_campaign::CampaignSpec::from_path(&spec).map_err(|e| e.to_string())?;
            let points = synapse_campaign::expand(&spec);
            writeln!(
                out,
                "campaign {:?}: {} points ({} workload-steps × {} machines × {} kernels × {} modes × {} widths × {} io blocks × {} rates × {} filesystems × {} atom sets × {} sample orders)",
                spec.name,
                points.len(),
                spec.workloads.iter().map(|w| w.steps.len()).sum::<usize>(),
                spec.machines.len(),
                spec.kernels.len(),
                spec.modes.len(),
                spec.threads.len(),
                spec.io_blocks.len(),
                spec.sample_rates.len(),
                spec.filesystems.len(),
                spec.atoms.len(),
                spec.sample_order.len(),
            )
            .map_err(|e| e.to_string())?;
            for p in points.iter().take(10) {
                writeln!(out, "  [{:>4}] {}", p.index, p.label()).map_err(|e| e.to_string())?;
            }
            if points.len() > 10 {
                writeln!(out, "  ... {} more", points.len() - 10).map_err(|e| e.to_string())?;
            }
        }
        Invocation::CampaignCacheStats { cache } => {
            let result_cache = synapse_campaign::ResultCache::open_with_workers(&cache, 0)
                .map_err(|e| e.to_string())?;
            let stats = result_cache.stats();
            writeln!(
                out,
                "cache {}: {} results, {} shard files ({}/{} shards occupied, {} dirty), {} bytes on disk, engine {:?}",
                cache.display(),
                stats.docs,
                stats.data_files,
                stats.occupied_shards,
                synapse_store::SHARD_COUNT,
                stats.dirty_shards,
                stats.bytes_on_disk,
                stats.engine,
            )
            .map_err(|e| e.to_string())?;
        }
        Invocation::CampaignCacheCompact { cache } => {
            let result_cache = synapse_campaign::ResultCache::open_with_workers(&cache, 0)
                .map_err(|e| e.to_string())?;
            let pass = result_cache.compact().map_err(|e| e.to_string())?;
            writeln!(
                out,
                "compacted {}: {} -> {} shard files ({} results){}",
                cache.display(),
                pass.files_before,
                pass.files_after,
                pass.docs,
                if pass.changed {
                    ""
                } else {
                    " — already compact"
                },
            )
            .map_err(|e| e.to_string())?;
        }
        Invocation::CampaignRun {
            spec,
            cache,
            workers,
            json_out,
            csv_out,
            summary_json,
            timings,
            record,
        } => {
            let spec =
                synapse_campaign::CampaignSpec::from_path(&spec).map_err(|e| e.to_string())?;
            let config = synapse_campaign::RunConfig { workers };
            let mut trace_id = None;
            let outcome = if let Some(trace_path) = &record {
                // Flight-record the run: the recorder sits on the same
                // observer seam the server streams from, then the
                // post-run stage timings are stamped in before sealing.
                let recorder = synapse_trace::TraceRecorder::new(&spec);
                let result_cache =
                    synapse_campaign::ResultCache::open_with_workers(&cache, config.workers)
                        .map_err(|e| e.to_string())?;
                let outcome = synapse_campaign::run_campaign_on(
                    &spec,
                    &config,
                    &result_cache,
                    &|event| recorder.observe(&event),
                    &synapse_campaign::CancelToken::new(),
                )
                .map_err(|e| e.to_string())?;
                recorder.record_stats(&outcome.stats);
                recorder.write_to(trace_path).map_err(|e| e.to_string())?;
                trace_id = Some(recorder.trace_id().to_string());
                outcome
            } else {
                synapse_campaign::run_campaign(&spec, &config, Some(&cache))
                    .map_err(|e| e.to_string())?
            };
            write!(out, "{}", outcome.report.render_summary()).map_err(|e| e.to_string())?;
            let stats = outcome.stats;
            writeln!(
                out,
                "  {} points in {:.3}s ({:.0} points/s): {} simulated, {} from cache ({:.0}% hit rate)",
                stats.points,
                stats.wall_secs,
                stats.points_per_sec(),
                stats.simulated,
                stats.cache_hits,
                stats.hit_rate() * 100.0,
            )
            .map_err(|e| e.to_string())?;
            if timings {
                writeln!(
                    out,
                    "  stages: expansion {:.3}s, sweep {:.3}s, aggregation {:.3}s",
                    stats.expand_secs, stats.sweep_secs, stats.aggregate_secs,
                )
                .map_err(|e| e.to_string())?;
                // Per-point latency distributions come from the same
                // process-wide histograms `/metrics` exposes; the
                // registry call returns the series the engine already
                // populated during the run.
                let registry = synapse_telemetry::global();
                let latency = |name: &str| {
                    registry.histogram(
                        name,
                        "Per-point latency.",
                        synapse_telemetry::DURATION_BUCKETS,
                    )
                };
                for (label, hist) in [
                    ("simulate", latency("synapse_engine_simulate_seconds")),
                    (
                        "cache lookup",
                        latency("synapse_engine_cache_lookup_seconds"),
                    ),
                ] {
                    if hist.count() == 0 {
                        writeln!(out, "  {label}: no observations").map_err(|e| e.to_string())?;
                        continue;
                    }
                    writeln!(
                        out,
                        "  {label}: p50 {:.3}ms p90 {:.3}ms p99 {:.3}ms ({} observations)",
                        hist.quantile(0.5) * 1e3,
                        hist.quantile(0.9) * 1e3,
                        hist.quantile(0.99) * 1e3,
                        hist.count(),
                    )
                    .map_err(|e| e.to_string())?;
                }
            }
            if let Some(path) = json_out {
                let json = outcome.report.to_json_pretty().map_err(|e| e.to_string())?;
                std::fs::write(&path, json).map_err(|e| e.to_string())?;
                writeln!(out, "  report written to {}", path.display())
                    .map_err(|e| e.to_string())?;
            }
            if let Some(path) = csv_out {
                std::fs::write(&path, outcome.report.to_csv()).map_err(|e| e.to_string())?;
                writeln!(out, "  csv written to {}", path.display()).map_err(|e| e.to_string())?;
            }
            if let (Some(path), Some(id)) = (&record, &trace_id) {
                writeln!(out, "  trace {id} recorded to {}", path.display())
                    .map_err(|e| e.to_string())?;
            }
            if let Some(path) = summary_json {
                let mut summary = serde_json::json!({
                    "name": outcome.report.name,
                    "engine_version": synapse_campaign::ENGINE_VERSION,
                    "points": stats.points,
                    "simulated": stats.simulated,
                    "cache_hits": stats.cache_hits,
                    "cache_hit_rate": stats.hit_rate(),
                    "wall_secs": stats.wall_secs,
                    "points_per_sec": stats.points_per_sec(),
                    "timings": stats.timings_json(),
                });
                if let (Some(trace_path), Some(id), serde_json::Value::Object(doc)) =
                    (&record, &trace_id, &mut summary)
                {
                    doc.insert(
                        "trace".to_string(),
                        serde_json::json!({
                            "path": trace_path.display().to_string(),
                            "trace_id": id,
                        }),
                    );
                }
                let json = serde_json::to_string_pretty(&summary).map_err(|e| e.to_string())?;
                std::fs::write(&path, json).map_err(|e| e.to_string())?;
                writeln!(out, "  summary written to {}", path.display())
                    .map_err(|e| e.to_string())?;
            }
        }
        Invocation::CampaignReplay {
            trace,
            lenient,
            report,
        } => {
            let loaded = synapse_trace::Trace::load(&trace).map_err(|e| e.to_string())?;
            let mode = if lenient {
                synapse_trace::ReplayMode::Lenient
            } else {
                synapse_trace::ReplayMode::Strict
            };
            let summary = loaded.verify(mode).map_err(|e| e.to_string())?;
            writeln!(
                out,
                "replayed trace {}: {}/{} points, {} annotations ({})",
                loaded.header.trace_id,
                summary.points,
                summary.total,
                summary.annotations,
                if summary.is_clean() {
                    "clean".to_string()
                } else {
                    format!("{} divergences", summary.divergences.len())
                },
            )
            .map_err(|e| e.to_string())?;
            for divergence in &summary.divergences {
                writeln!(out, "  divergence: {divergence}").map_err(|e| e.to_string())?;
            }
            if let Some(path) = report {
                // Reconstructed purely from the record — the simulator
                // is never invoked, so this is byte-identical to the
                // live run's report or an error.
                let report = loaded.reconstruct_report().map_err(|e| e.to_string())?;
                let rendered = if path.extension().is_some_and(|e| e == "csv") {
                    report.to_csv()
                } else {
                    report.to_json_pretty().map_err(|e| e.to_string())?
                };
                std::fs::write(&path, rendered).map_err(|e| e.to_string())?;
                writeln!(out, "  report reconstructed to {}", path.display())
                    .map_err(|e| e.to_string())?;
            }
        }
        Invocation::CampaignTraceSummary { trace } => {
            let loaded = synapse_trace::Trace::load(&trace).map_err(|e| e.to_string())?;
            write!(out, "{}", loaded.summary()).map_err(|e| e.to_string())?;
        }
        Invocation::Stats {
            command,
            tags,
            store,
        } => {
            let store = FileStore::open(&store).map_err(|e| e.to_string())?;
            let key = synapse_model::ProfileKey::new(command.trim(), tags);
            let set = ProfileStore::load_set(&store, &key).map_err(|e| e.to_string())?;
            let rt = set.runtime_summary().map_err(|e| e.to_string())?;
            let cycles = set
                .totals_summary(|t| t.cycles as f64)
                .map_err(|e| e.to_string())?;
            writeln!(
                out,
                "{} runs: Tx mean={:.3}s std={:.3}s ci99={:.3}s | cycles mean={:.3e} ci99={:.3e}",
                set.len(),
                rt.mean,
                rt.std,
                rt.ci99(),
                cycles.mean,
                cycles.ci99(),
            )
            .map_err(|e| e.to_string())?;
        }
        Invocation::Inspect {
            command,
            tags,
            store,
        } => {
            let store = FileStore::open(&store).map_err(|e| e.to_string())?;
            let key = synapse_model::ProfileKey::new(command.trim(), tags);
            let profile = store.load_representative(&key).map_err(|e| e.to_string())?;
            let json = profile.to_json().map_err(|e| e.to_string())?;
            writeln!(out, "{json}").map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_profile_with_flags() {
        let inv = parse_args(&argv(&[
            "profile", "sleep 1", "--tags", "a=1,b=2", "--rate", "2.5", "--store", "/tmp/x",
        ]))
        .unwrap();
        match inv {
            Invocation::Profile {
                command,
                tags,
                rate,
                store,
            } => {
                assert_eq!(command, "sleep 1");
                assert_eq!(tags.get("a"), Some("1"));
                assert_eq!(rate, 2.5);
                assert_eq!(store, PathBuf::from("/tmp/x"));
            }
            other => panic!("wrong invocation: {other:?}"),
        }
    }

    #[test]
    fn parses_emulate_with_kernel_and_threads() {
        let inv = parse_args(&argv(&[
            "emulate",
            "app",
            "--kernel",
            "c",
            "--threads",
            "8",
            "--write-block",
            "4096",
        ]))
        .unwrap();
        match inv {
            Invocation::Emulate {
                kernel,
                threads,
                write_block,
                ..
            } => {
                assert_eq!(kernel, "c");
                assert_eq!(threads, 8);
                assert_eq!(write_block, 4096);
            }
            other => panic!("wrong invocation: {other:?}"),
        }
    }

    #[test]
    fn rejects_unknown_flags_and_subcommands() {
        assert!(parse_args(&argv(&["profile", "x", "--bogus"])).is_err());
        assert!(parse_args(&argv(&["frobnicate"])).is_err());
        assert!(parse_args(&argv(&["profile"])).is_err()); // no command
        assert!(parse_args(&argv(&["profile", "a", "b"])).is_err()); // two positionals
    }

    #[test]
    fn no_args_is_help() {
        assert_eq!(parse_args(&[]).unwrap(), Invocation::Help);
        assert_eq!(parse_args(&argv(&["--help"])).unwrap(), Invocation::Help);
    }

    #[test]
    fn kernel_names_resolve() {
        assert!(kernel_by_name("ASM").is_ok());
        assert!(kernel_by_name("c").is_ok());
        assert!(kernel_by_name("spin").is_ok());
        assert!(kernel_by_name("fortran").is_err());
    }

    #[test]
    fn table1_and_machines_render() {
        let mut buf = Vec::new();
        run(Invocation::Table1, &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("FLOPs"));
        let mut buf2 = Vec::new();
        run(Invocation::Machines, &mut buf2).unwrap();
        let s2 = String::from_utf8(buf2).unwrap();
        assert!(s2.contains("thinkie"));
        assert!(s2.contains("titan"));
    }

    #[test]
    fn help_renders_usage() {
        let mut buf = Vec::new();
        run(Invocation::Help, &mut buf).unwrap();
        assert!(String::from_utf8(buf).unwrap().contains("USAGE"));
    }

    #[test]
    fn parses_campaign_run_and_plan() {
        let inv = parse_args(&argv(&[
            "campaign",
            "run",
            "sweep.toml",
            "--cache",
            "/tmp/cc",
            "--workers",
            "4",
            "--json",
            "out.json",
            "--csv",
            "out.csv",
        ]))
        .unwrap();
        match inv {
            Invocation::CampaignRun {
                spec,
                cache,
                workers,
                json_out,
                csv_out,
                summary_json,
                timings,
                record,
            } => {
                assert_eq!(spec, PathBuf::from("sweep.toml"));
                assert_eq!(cache, PathBuf::from("/tmp/cc"));
                assert_eq!(workers, 4);
                assert_eq!(json_out, Some(PathBuf::from("out.json")));
                assert_eq!(csv_out, Some(PathBuf::from("out.csv")));
                assert_eq!(summary_json, None);
                assert!(!timings);
                assert_eq!(record, None);
            }
            other => panic!("wrong invocation: {other:?}"),
        }
        let plan = parse_args(&argv(&["campaign", "plan", "sweep.toml"])).unwrap();
        assert_eq!(
            plan,
            Invocation::CampaignPlan {
                spec: PathBuf::from("sweep.toml")
            }
        );
        assert!(parse_args(&argv(&["campaign"])).is_err());
        assert!(parse_args(&argv(&["campaign", "run"])).is_err());
        assert!(parse_args(&argv(&["campaign", "frob", "x.toml"])).is_err());
        assert!(parse_args(&argv(&["campaign", "run", "x.toml", "--bogus"])).is_err());
    }

    #[test]
    fn parses_campaign_run_timings_flag() {
        let inv = parse_args(&argv(&["campaign", "run", "sweep.toml", "--timings"])).unwrap();
        match inv {
            Invocation::CampaignRun { timings, .. } => assert!(timings),
            other => panic!("wrong invocation: {other:?}"),
        }
    }

    #[test]
    fn parses_campaign_run_summary_json_flag() {
        let inv = parse_args(&argv(&[
            "campaign",
            "run",
            "sweep.toml",
            "--summary-json",
            "summary.json",
        ]))
        .unwrap();
        match inv {
            Invocation::CampaignRun { summary_json, .. } => {
                assert_eq!(summary_json, Some(PathBuf::from("summary.json")));
            }
            other => panic!("wrong invocation: {other:?}"),
        }
    }

    #[test]
    fn parses_campaign_record_and_replay_forms() {
        let inv = parse_args(&argv(&[
            "campaign",
            "run",
            "sweep.toml",
            "--record",
            "run.trace.jsonl",
        ]))
        .unwrap();
        match inv {
            Invocation::CampaignRun { record, .. } => {
                assert_eq!(record, Some(PathBuf::from("run.trace.jsonl")));
            }
            other => panic!("wrong invocation: {other:?}"),
        }
        assert!(parse_args(&argv(&["campaign", "run", "s.toml", "--record"])).is_err());

        assert_eq!(
            parse_args(&argv(&["campaign", "replay", "run.trace.jsonl"])).unwrap(),
            Invocation::CampaignReplay {
                trace: PathBuf::from("run.trace.jsonl"),
                lenient: false,
                report: None,
            }
        );
        assert_eq!(
            parse_args(&argv(&[
                "campaign",
                "replay",
                "run.trace.jsonl",
                "--lenient",
                "--report",
                "out.csv",
            ]))
            .unwrap(),
            Invocation::CampaignReplay {
                trace: PathBuf::from("run.trace.jsonl"),
                lenient: true,
                report: Some(PathBuf::from("out.csv")),
            }
        );
        assert_eq!(
            parse_args(&argv(&["campaign", "trace-summary", "t.jsonl"])).unwrap(),
            Invocation::CampaignTraceSummary {
                trace: PathBuf::from("t.jsonl"),
            }
        );
        assert!(parse_args(&argv(&["campaign", "replay"])).is_err());
        assert!(parse_args(&argv(&["campaign", "replay", "a", "b"])).is_err());
        assert!(parse_args(&argv(&["campaign", "trace-summary", "t", "--lenient"])).is_err());
    }

    #[test]
    fn parses_campaign_cache_actions() {
        assert_eq!(
            parse_args(&argv(&["campaign", "cache", "stats", "--cache", "/tmp/c"])).unwrap(),
            Invocation::CampaignCacheStats {
                cache: PathBuf::from("/tmp/c")
            }
        );
        assert_eq!(
            parse_args(&argv(&[
                "campaign", "cache", "compact", "--cache", "/tmp/c"
            ]))
            .unwrap(),
            Invocation::CampaignCacheCompact {
                cache: PathBuf::from("/tmp/c")
            }
        );
        assert!(parse_args(&argv(&["campaign", "cache"])).is_err());
        assert!(parse_args(&argv(&["campaign", "cache", "frob"])).is_err());
        assert!(parse_args(&argv(&["campaign", "cache", "stats", "extra"])).is_err());
        assert!(parse_args(&argv(&["campaign", "cache", "stats", "--cache"])).is_err());
    }

    #[test]
    fn campaign_plan_and_run_through_cli_layer() {
        let dir = std::env::temp_dir().join(format!("synapse-cli-campaign-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let spec_path = dir.join("sweep.toml");
        std::fs::write(
            &spec_path,
            r#"
            name = "cli-sweep"
            seed = 1
            machines = ["thinkie", "comet"]
            kernels = ["asm", "c"]

            [[workloads]]
            app = "gromacs"
            steps = [10000]
            "#,
        )
        .unwrap();

        let mut buf = Vec::new();
        run(
            Invocation::CampaignPlan {
                spec: spec_path.clone(),
            },
            &mut buf,
        )
        .unwrap();
        let plan_text = String::from_utf8(buf).unwrap();
        assert!(plan_text.contains("4 points"), "{plan_text}");

        let cache = dir.join("cache");
        let json_path = dir.join("report.json");
        let summary_path = dir.join("summary.json");
        let trace_path = dir.join("run.trace.jsonl");
        let invocation = || Invocation::CampaignRun {
            spec: spec_path.clone(),
            cache: cache.clone(),
            workers: 2,
            json_out: Some(json_path.clone()),
            csv_out: Some(dir.join("report.csv")),
            summary_json: Some(summary_path.clone()),
            timings: true,
            record: Some(trace_path.clone()),
        };
        let mut buf1 = Vec::new();
        run(invocation(), &mut buf1).unwrap();
        let text1 = String::from_utf8(buf1).unwrap();
        assert!(text1.contains("4 simulated, 0 from cache"), "{text1}");
        assert!(json_path.exists());
        assert!(dir.join("report.csv").exists());

        // Second run is served from the persisted cache, and the
        // machine-readable summary says so exactly (what CI asserts).
        let mut buf2 = Vec::new();
        run(invocation(), &mut buf2).unwrap();
        let text2 = String::from_utf8(buf2).unwrap();
        assert!(
            text2.contains("0 simulated, 4 from cache (100% hit rate)"),
            "{text2}"
        );
        let summary: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&summary_path).unwrap()).unwrap();
        assert_eq!(summary["cache_hit_rate"].as_f64(), Some(1.0));
        assert_eq!(summary["simulated"].as_u64(), Some(0));
        assert_eq!(summary["cache_hits"].as_u64(), Some(4));
        assert!(summary["points_per_sec"].as_f64().unwrap() > 0.0);
        // `--timings` prints the stage breakdown, and the summary
        // carries the same shape machine-readably.
        assert!(text2.contains("stages: expansion"), "{text2}");
        assert!(text2.contains("cache lookup: p50"), "{text2}");
        assert!(summary["timings"]["wall_secs"].as_f64().unwrap() > 0.0);
        assert!(summary["timings"]["sweep_secs"].as_f64().unwrap() > 0.0);
        // The summary names the engine version and the recorded trace
        // so downstream tooling can gate on compatibility directly.
        assert_eq!(
            summary["engine_version"].as_u64(),
            Some(synapse_campaign::ENGINE_VERSION as u64)
        );
        assert_eq!(
            summary["trace"]["path"].as_str(),
            Some(trace_path.display().to_string().as_str())
        );
        assert!(summary["trace"]["trace_id"].as_str().is_some());

        // Strict replay of the recorded trace reconstructs the report
        // byte-identically without invoking the simulator.
        let reconstructed = dir.join("replayed.json");
        let mut buf_replay = Vec::new();
        run(
            Invocation::CampaignReplay {
                trace: trace_path.clone(),
                lenient: false,
                report: Some(reconstructed.clone()),
            },
            &mut buf_replay,
        )
        .unwrap();
        let replay_text = String::from_utf8(buf_replay).unwrap();
        assert!(replay_text.contains("clean"), "{replay_text}");
        assert_eq!(
            std::fs::read(&json_path).unwrap(),
            std::fs::read(&reconstructed).unwrap(),
            "replayed report must be byte-identical to the live run's"
        );
        let mut buf_ts = Vec::new();
        run(
            Invocation::CampaignTraceSummary {
                trace: trace_path.clone(),
            },
            &mut buf_ts,
        )
        .unwrap();
        let ts_text = String::from_utf8(buf_ts).unwrap();
        assert!(ts_text.contains("campaign \"cli-sweep\""), "{ts_text}");
        assert!(ts_text.contains("stages:"), "{ts_text}");

        // The cache subcommands see the sharded store the runs built.
        let mut buf3 = Vec::new();
        run(
            Invocation::CampaignCacheStats {
                cache: cache.clone(),
            },
            &mut buf3,
        )
        .unwrap();
        let stats_text = String::from_utf8(buf3).unwrap();
        assert!(stats_text.contains("4 results"), "{stats_text}");
        let mut buf4 = Vec::new();
        run(Invocation::CampaignCacheCompact { cache }, &mut buf4).unwrap();
        assert!(
            String::from_utf8(buf4).unwrap().contains("compacted"),
            "compact output"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn parses_serve_and_campaign_client_commands() {
        assert_eq!(
            parse_args(&argv(&["serve"])).unwrap(),
            Invocation::Serve {
                addr: DEFAULT_SERVER_ADDR.into(),
                cache: default_campaign_cache(),
                queue_workers: 2,
                workers: 0,
                max_connections: synapse_server::DEFAULT_MAX_CONNECTIONS,
                reactor_threads: 0,
                batch_points: synapse_server::DEFAULT_BATCH_POINTS,
            }
        );
        assert_eq!(
            parse_args(&argv(&[
                "serve",
                "--addr",
                "127.0.0.1:9999",
                "--cache",
                "/tmp/srv",
                "--queue-workers",
                "4",
                "--workers",
                "2",
                "--max-connections",
                "64",
                "--reactor-threads",
                "8",
                "--batch-points",
                "16",
            ]))
            .unwrap(),
            Invocation::Serve {
                addr: "127.0.0.1:9999".into(),
                cache: PathBuf::from("/tmp/srv"),
                queue_workers: 4,
                workers: 2,
                max_connections: 64,
                reactor_threads: 8,
                batch_points: 16,
            }
        );
        assert!(parse_args(&argv(&["serve", "--queue-workers", "0"])).is_err());
        assert!(parse_args(&argv(&["serve", "--bogus"])).is_err());
        assert!(parse_args(&argv(&["serve", "--reactor-threads", "lots"])).is_err());
        assert!(parse_args(&argv(&["serve", "--batch-points", "0"])).is_err());
        assert!(parse_args(&argv(&["serve", "--batch-points", "many"])).is_err());

        assert_eq!(
            parse_args(&argv(&["campaign", "submit", "s.toml", "--watch"])).unwrap(),
            Invocation::CampaignSubmit {
                spec: PathBuf::from("s.toml"),
                server: DEFAULT_SERVER_ADDR.into(),
                watch: true,
                cluster: false,
                record: false,
            }
        );
        assert_eq!(
            parse_args(&argv(&[
                "campaign",
                "submit",
                "s.toml",
                "--cluster",
                "--record"
            ]))
            .unwrap(),
            Invocation::CampaignSubmit {
                spec: PathBuf::from("s.toml"),
                server: DEFAULT_SERVER_ADDR.into(),
                watch: false,
                cluster: true,
                record: true,
            }
        );
        assert_eq!(
            parse_args(&argv(&[
                "campaign",
                "watch",
                "j3",
                "--server",
                "127.0.0.1:17",
            ]))
            .unwrap(),
            Invocation::CampaignWatch {
                id: "j3".into(),
                server: "127.0.0.1:17".into(),
                aggregates: false,
            }
        );
        assert_eq!(
            parse_args(&argv(&["campaign", "watch", "j3", "--aggregates"])).unwrap(),
            Invocation::CampaignWatch {
                id: "j3".into(),
                server: DEFAULT_SERVER_ADDR.into(),
                aggregates: true,
            }
        );
        assert_eq!(
            parse_args(&argv(&["campaign", "status"])).unwrap(),
            Invocation::CampaignStatus {
                id: None,
                server: DEFAULT_SERVER_ADDR.into(),
            }
        );
        assert_eq!(
            parse_args(&argv(&["campaign", "cancel", "j1"])).unwrap(),
            Invocation::CampaignCancel {
                id: "j1".into(),
                server: DEFAULT_SERVER_ADDR.into(),
            }
        );
        assert_eq!(
            parse_args(&argv(&[
                "campaign",
                "aggregates",
                "j7",
                "--axis",
                "machine",
                "--metric",
                "error_pct",
                "--json",
            ]))
            .unwrap(),
            Invocation::CampaignAggregates {
                id: "j7".into(),
                server: DEFAULT_SERVER_ADDR.into(),
                axis: Some("machine".into()),
                metric: Some("error_pct".into()),
                json: true,
            }
        );
        assert!(parse_args(&argv(&["campaign", "submit"])).is_err());
        assert!(parse_args(&argv(&["campaign", "cancel"])).is_err());
        assert!(parse_args(&argv(&["campaign", "aggregates"])).is_err());
        // --watch is a submit-only flag.
        assert!(parse_args(&argv(&["campaign", "watch", "j1", "--watch"])).is_err());
        // --aggregates is a watch-only flag; --axis belongs to aggregates.
        assert!(parse_args(&argv(&["campaign", "status", "--aggregates"])).is_err());
        assert!(parse_args(&argv(&["campaign", "watch", "j1", "--axis", "machine"])).is_err());
    }

    #[test]
    fn aggregates_table_renders_overall_and_slices() {
        let doc = serde_json::json!({
            "id": "j1", "name": "sweep", "status": "running",
            "done": 3, "total": 8, "points": 3, "v": 1,
            "overall": {"metrics": {"error_pct": {
                "n": 3, "mean": 4.5, "p50": 4.0, "p95": 6.0, "p99": 6.0,
                "min": 3.0, "max": 6.0,
            }, "tx": {"n": 0}}},
            "slices": [{"axis": "machine", "value": "stampede",
                "metrics": {"error_pct": {
                    "n": 3, "mean": 4.5, "p50": 4.0, "p95": 6.0,
                    "p99": 6.0, "min": 3.0, "max": 6.0,
                }}}],
        });
        let table = render_aggregates_table(&doc);
        assert!(table.contains("j1 \"sweep\" running — 3/8 points aggregated"));
        assert!(table.contains("(overall)"));
        assert!(table.contains("machine"));
        assert!(table.contains("stampede"));
        assert!(table.contains("error_pct"));
        // Empty metrics (n=0) render no row.
        assert!(!table.contains(" tx "));
    }

    #[test]
    fn parses_cluster_commands() {
        assert_eq!(
            parse_args(&argv(&[
                "cluster",
                "start",
                "--worker",
                "127.0.0.1:9001",
                "--worker",
                "127.0.0.1:9002",
                "--max-connections",
                "128",
            ]))
            .unwrap(),
            Invocation::ClusterStart {
                addr: DEFAULT_SERVER_ADDR.into(),
                cache: default_campaign_cache(),
                queue_workers: 2,
                workers: 0,
                max_connections: 128,
                reactor_threads: 0,
                batch_points: synapse_server::DEFAULT_BATCH_POINTS,
                worker_addrs: vec!["127.0.0.1:9001".into(), "127.0.0.1:9002".into()],
            }
        );
        assert_eq!(
            parse_args(&argv(&[
                "cluster",
                "add-worker",
                "127.0.0.1:9001",
                "--server",
                "127.0.0.1:8000",
            ]))
            .unwrap(),
            Invocation::ClusterAddWorker {
                worker: "127.0.0.1:9001".into(),
                server: "127.0.0.1:8000".into(),
            }
        );
        assert_eq!(
            parse_args(&argv(&["cluster", "status"])).unwrap(),
            Invocation::ClusterStatus {
                server: DEFAULT_SERVER_ADDR.into(),
            }
        );
        assert_eq!(
            parse_args(&argv(&[
                "campaign",
                "submit",
                "s.toml",
                "--cluster",
                "--watch"
            ]))
            .unwrap(),
            Invocation::CampaignSubmit {
                spec: PathBuf::from("s.toml"),
                server: DEFAULT_SERVER_ADDR.into(),
                watch: true,
                cluster: true,
                record: false,
            }
        );
        assert!(parse_args(&argv(&["cluster"])).is_err());
        assert!(parse_args(&argv(&["cluster", "frob"])).is_err());
        assert!(parse_args(&argv(&["cluster", "add-worker"])).is_err());
        assert!(parse_args(&argv(&["cluster", "status", "extra"])).is_err());
        // --worker is a cluster-start-only flag.
        assert!(parse_args(&argv(&["serve", "--worker", "x"])).is_err());
        // --cluster is a submit-only flag.
        assert!(parse_args(&argv(&["campaign", "watch", "j1", "--cluster"])).is_err());
    }

    #[test]
    fn cluster_client_commands_through_cli_layer() {
        // One in-process worker + one in-process coordinator, driven
        // purely through CLI invocations (what the CI cluster smoke
        // does with real processes).
        let dir = std::env::temp_dir().join(format!("synapse-cli-cluster-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let spec_path = dir.join("sweep.toml");
        std::fs::write(
            &spec_path,
            r#"
            name = "cli-cluster"
            seed = 17
            machines = ["thinkie", "comet"]
            kernels = ["asm", "c"]

            [[workloads]]
            app = "gromacs"
            steps = [10000, 50000]
            "#,
        )
        .unwrap();

        let worker = synapse_server::Server::bind(synapse_server::ServerConfig {
            addr: "127.0.0.1:0".into(),
            ..Default::default()
        })
        .unwrap();
        let worker_addr = worker.local_addr().unwrap().to_string();
        let worker_handle = worker.handle().unwrap();
        let worker_join = std::thread::spawn(move || worker.run().unwrap());

        let coordinator = std::sync::Arc::new(synapse_cluster::Coordinator::new(
            synapse_cluster::ClusterConfig::default(),
        ));
        let coord = synapse_server::Server::bind(synapse_server::ServerConfig {
            addr: "127.0.0.1:0".into(),
            ..Default::default()
        })
        .unwrap()
        .with_cluster(coordinator);
        let coord_addr = coord.local_addr().unwrap().to_string();
        let coord_handle = coord.handle().unwrap();
        let coord_join = std::thread::spawn(move || coord.run().unwrap());

        // add-worker registers over HTTP.
        let mut buf = Vec::new();
        run(
            Invocation::ClusterAddWorker {
                worker: worker_addr.clone(),
                server: coord_addr.clone(),
            },
            &mut buf,
        )
        .unwrap();
        let doc: serde_json::Value =
            serde_json::from_str(String::from_utf8(buf).unwrap().trim()).unwrap();
        assert_eq!(doc["alive"].as_bool(), Some(true));

        // status shows one live worker.
        let mut buf = Vec::new();
        run(
            Invocation::ClusterStatus {
                server: coord_addr.clone(),
            },
            &mut buf,
        )
        .unwrap();
        let status: serde_json::Value =
            serde_json::from_str(String::from_utf8(buf).unwrap().trim()).unwrap();
        assert_eq!(status["live"].as_u64(), Some(1));

        // submit --cluster --watch: distributed, streamed, completed.
        let mut buf = Vec::new();
        run(
            Invocation::CampaignSubmit {
                spec: spec_path,
                server: coord_addr,
                watch: true,
                cluster: true,
                record: false,
            },
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        let first: serde_json::Value = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(first["distributed"].as_bool(), Some(true));
        assert_eq!(first["points"].as_u64(), Some(8));
        let last: serde_json::Value = serde_json::from_str(lines.last().unwrap()).unwrap();
        assert_eq!(last["event"].as_str(), Some("completed"));
        assert_eq!(last["points"].as_u64(), Some(8));

        coord_handle.shutdown();
        coord_join.join().unwrap();
        worker_handle.shutdown();
        worker_join.join().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn submit_watch_status_cancel_through_cli_layer() {
        // Boot a real server, then drive it exclusively through CLI
        // invocations, as the CI smoke step does.
        let dir = std::env::temp_dir().join(format!("synapse-cli-serve-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let spec_path = dir.join("sweep.toml");
        std::fs::write(
            &spec_path,
            r#"
            name = "cli-serve"
            seed = 13
            machines = ["thinkie", "comet"]
            kernels = ["asm", "c"]

            [[workloads]]
            app = "gromacs"
            steps = [10000]
            "#,
        )
        .unwrap();

        let server = synapse_server::Server::bind(synapse_server::ServerConfig {
            addr: "127.0.0.1:0".into(),
            cache_dir: Some(dir.join("cache")),
            ..Default::default()
        })
        .unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let handle = server.handle().unwrap();
        let join = std::thread::spawn(move || server.run().unwrap());

        // submit --watch: one submit reply line + the NDJSON stream.
        let mut buf = Vec::new();
        run(
            Invocation::CampaignSubmit {
                spec: spec_path.clone(),
                server: addr.clone(),
                watch: true,
                cluster: false,
                record: false,
            },
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        let first: serde_json::Value = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(first["points"].as_u64(), Some(4));
        let id = first["id"].as_str().unwrap().to_string();
        let last: serde_json::Value = serde_json::from_str(lines.last().unwrap()).unwrap();
        assert_eq!(last["event"].as_str(), Some("completed"));
        let point_lines = lines
            .iter()
            .filter(|l| l.contains("\"event\":\"point\""))
            .count();
        assert_eq!(point_lines, 4, "{text}");

        // status of that job.
        let mut buf = Vec::new();
        run(
            Invocation::CampaignStatus {
                id: Some(id.clone()),
                server: addr.clone(),
            },
            &mut buf,
        )
        .unwrap();
        let status: serde_json::Value =
            serde_json::from_str(String::from_utf8(buf).unwrap().trim()).unwrap();
        assert_eq!(status["status"].as_str(), Some("completed"));
        assert_eq!(status["done"].as_u64(), Some(4));

        // watch replays a finished job's stream.
        let mut buf = Vec::new();
        run(
            Invocation::CampaignWatch {
                id: id.clone(),
                server: addr.clone(),
                aggregates: false,
            },
            &mut buf,
        )
        .unwrap();
        assert!(String::from_utf8(buf)
            .unwrap()
            .contains("\"event\":\"completed\""));

        // watch --aggregates replays the lifecycle + snapshot ring:
        // terminal snapshot and completed event, but no per-point lines.
        let mut buf = Vec::new();
        run(
            Invocation::CampaignWatch {
                id: id.clone(),
                server: addr.clone(),
                aggregates: true,
            },
            &mut buf,
        )
        .unwrap();
        let stream = String::from_utf8(buf).unwrap();
        assert!(stream.contains("\"event\":\"snapshot\""));
        assert!(stream.contains("\"event\":\"completed\""));
        assert!(!stream.contains("\"event\":\"point\""));

        // aggregates prints the live per-(axis, value) stats table.
        let mut buf = Vec::new();
        run(
            Invocation::CampaignAggregates {
                id: id.clone(),
                server: addr.clone(),
                axis: Some("machine".into()),
                metric: Some("error_pct".into()),
                json: false,
            },
            &mut buf,
        )
        .unwrap();
        let table = String::from_utf8(buf).unwrap();
        assert!(table.contains("(overall)"), "{table}");
        assert!(table.contains("error_pct"), "{table}");

        // cancel on a finished job is a no-op status echo.
        let mut buf = Vec::new();
        run(
            Invocation::CampaignCancel {
                id,
                server: addr.clone(),
            },
            &mut buf,
        )
        .unwrap();
        let echoed: serde_json::Value =
            serde_json::from_str(String::from_utf8(buf).unwrap().trim()).unwrap();
        assert_eq!(echoed["status"].as_str(), Some("completed"));

        handle.shutdown();
        join.join().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn profile_and_stats_through_cli_layer() {
        let dir = std::env::temp_dir().join(format!("synapse-cli-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut buf = Vec::new();
        run(
            Invocation::Profile {
                command: "sleep 0.1".into(),
                tags: Tags::parse("t=cli"),
                rate: 10.0,
                store: dir.clone(),
            },
            &mut buf,
        )
        .unwrap();
        assert!(String::from_utf8(buf).unwrap().contains("Tx="));
        let mut buf2 = Vec::new();
        run(
            Invocation::Stats {
                command: "sleep 0.1".into(),
                tags: Tags::parse("t=cli"),
                store: dir.clone(),
            },
            &mut buf2,
        )
        .unwrap();
        assert!(String::from_utf8(buf2).unwrap().contains("1 runs"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
