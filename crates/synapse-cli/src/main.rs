//! `synapse` — command-line wrapper around the profile/emulate API.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let invocation = match synapse_cli::parse_args(&args) {
        Ok(inv) => inv,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", synapse_cli::USAGE);
            return ExitCode::from(2);
        }
    };
    let mut out = std::io::stdout();
    match synapse_cli::run(invocation, &mut out) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
