#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! `synapse-trace` — the campaign flight recorder.
//!
//! A campaign's event stream used to be ephemeral: once the sweep
//! finished, the per-point causal history (which point landed, in what
//! order, from which worker, after how long) was gone, and validating
//! determinism meant re-simulating the whole grid. This crate records
//! that stream as a **versioned `.jsonl` trace** and replays it
//! through the same [`PointEvent`] observer seam the live engine
//! drives — instant, free, and deterministic.
//!
//! A trace has two strata:
//!
//! * **Causal events** (`"kind":"header"` / `"kind":"event"`) — the
//!   spec, engine version, seed, and every per-point result, written
//!   in canonical grid order. This projection is *byte-deterministic*:
//!   two recordings of the same spec+seed are identical regardless of
//!   worker count, cache warmth, completion order, or which machine
//!   (or cluster) executed the sweep. [`Trace::canonical_bytes`]
//!   extracts it; the CI replay gate compares it.
//! * **Annotations** (`"kind":"timing"` / `"lease"` / `"span"`) —
//!   execution-dependent observability: stage walls, lease lifecycle
//!   (which worker ran which index range, and when), and per-endpoint
//!   request spans. All times are **monotonic offsets from campaign
//!   start** (`off_secs`) — no absolute wall-clock value appears
//!   anywhere in a trace. Replay ignores annotations; the
//!   trace-summary surface renders them.
//!
//! Causality: every trace carries a deterministic
//! [`campaign_trace_id`], minted at submit, propagated to cluster
//! workers as the `X-Synapse-Trace` request header, echoed in their
//! lease/batch events, and stamped on request spans — so a merged
//! cluster trace reconstructs which worker produced which points and
//! when.
//!
//! Replay has two modes: [`ReplayMode::Strict`] (any divergence is an
//! error — the zero-flake CI gate) and [`ReplayMode::Lenient`]
//! (divergences are collected and reported — the audit tool).
//! [`Trace::verify`] is a fast structural scan (no per-point parsing —
//! orders of magnitude faster than simulation; the `trace_replay`
//! bench stage measures it); [`Trace::replay_on`] re-drives an
//! observer with fully parsed events; [`Trace::reconstruct_report`]
//! rebuilds the byte-identical [`CampaignReport`] without ever
//! invoking the simulator.

mod metrics;

use std::fmt;
use std::fs;
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use serde::{Deserialize, Serialize};
use synapse_campaign::{
    campaign_trace_id, CampaignError, CampaignReport, CampaignSpec, PointEvent, PointResult,
    RunStats, ENGINE_VERSION,
};

use crate::metrics::TraceMetrics;

/// Version of the trace file format this crate reads and writes.
///
/// Readers accept any `v <=` this and refuse newer files with a clean
/// [`TraceError::Version`] (never a panic); writers always stamp the
/// current version. Bump when a causal line's schema changes;
/// annotation-only additions are compatible without a bump.
pub const TRACE_VERSION: u32 = 1;

/// Canonical prefix of a per-point causal line (the fast-scan key).
const POINT_PREFIX: &str = "{\"kind\":\"event\",\"t\":\"point\",\"index\":";
/// Prefix of the sweep-start causal line.
const STARTED_PREFIX: &str = "{\"kind\":\"event\",\"t\":\"started\",";
/// Prefix of the sweep-completion causal line.
const FINISHED_PREFIX: &str = "{\"kind\":\"event\",\"t\":\"finished\",";
/// Prefix of the cancellation causal line.
const CANCELLED_PREFIX: &str = "{\"kind\":\"event\",\"t\":\"cancelled\",";
/// Prefix of a ring-truncation marker (a server event ring dropped
/// events before they could be recorded).
const TRUNCATED_PREFIX: &str = "{\"kind\":\"event\",\"t\":\"truncated\",";

/// Everything that can go wrong recording, reading, or replaying.
#[derive(Debug)]
pub enum TraceError {
    /// Filesystem failure reading or writing a trace.
    Io(std::io::Error),
    /// The first line is not a parseable trace header.
    Header(String),
    /// The trace was written by a newer format version.
    Version {
        /// Version stamped in the file.
        found: u32,
        /// Newest version this reader understands.
        supported: u32,
    },
    /// A causal line is malformed.
    Corrupt {
        /// 1-based line number in the trace file.
        line: usize,
        /// What was wrong with it.
        reason: String,
    },
    /// Strict replay found a divergence from a complete causal stream.
    Divergence(String),
    /// Report reconstruction failed downstream of the trace itself.
    Campaign(CampaignError),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::Header(reason) => write!(f, "invalid trace header: {reason}"),
            TraceError::Version { found, supported } => write!(
                f,
                "trace format v{found} is newer than supported v{supported}; \
                 upgrade synapse to replay this trace"
            ),
            TraceError::Corrupt { line, reason } => {
                write!(f, "corrupt trace line {line}: {reason}")
            }
            TraceError::Divergence(msg) => write!(f, "replay divergence: {msg}"),
            TraceError::Campaign(e) => write!(f, "replay report assembly failed: {e}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> TraceError {
        TraceError::Io(e)
    }
}

impl From<CampaignError> for TraceError {
    fn from(e: CampaignError) -> TraceError {
        TraceError::Campaign(e)
    }
}

/// First line of every trace: format version, provenance, and the full
/// spec (so replay needs nothing but the trace file).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceHeader {
    /// Always `"header"`.
    pub kind: String,
    /// Trace format version ([`TRACE_VERSION`] at write time).
    pub v: u32,
    /// Engine version that produced the recorded results.
    pub engine_version: u32,
    /// Deterministic causality id ([`campaign_trace_id`]).
    pub trace_id: String,
    /// Campaign name from the spec.
    pub name: String,
    /// Master seed.
    pub seed: u64,
    /// Total scenario points the grid expands to.
    pub points: usize,
    /// The full campaign spec.
    pub spec: CampaignSpec,
}

/// One per-point causal line (serialized shape of the trace's densest
/// record; field order is the canonical byte layout).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct PointLine {
    kind: String,
    t: String,
    index: usize,
    result: PointResult,
}

/// How replay treats divergences.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayMode {
    /// Any divergence is an error — the CI gate.
    Strict,
    /// Divergences are collected into the summary — the audit tool.
    Lenient,
}

impl ReplayMode {
    /// Parse a CLI mode flag.
    pub fn from_flag(flag: &str) -> Option<ReplayMode> {
        match flag {
            "strict" => Some(ReplayMode::Strict),
            "lenient" => Some(ReplayMode::Lenient),
            _ => None,
        }
    }
}

/// What a replay validation pass found.
#[derive(Debug, Clone)]
pub struct ReplaySummary {
    /// Points the header promises.
    pub total: usize,
    /// Causally-ordered points actually present.
    pub points: usize,
    /// Annotation lines skipped (timing/lease/span).
    pub annotations: usize,
    /// Divergences found (empty in a clean strict pass).
    pub divergences: Vec<String>,
}

impl ReplaySummary {
    /// Whether the trace replayed with zero divergences.
    pub fn is_clean(&self) -> bool {
        self.divergences.is_empty()
    }
}

/// Record (or fail with) one divergence according to the mode.
fn diverge(mode: ReplayMode, divergences: &mut Vec<String>, msg: String) -> Result<(), TraceError> {
    TraceMetrics::get().replay_divergences.inc();
    match mode {
        ReplayMode::Strict => Err(TraceError::Divergence(msg)),
        ReplayMode::Lenient => {
            divergences.push(msg);
            Ok(())
        }
    }
}

/// Fast structural probe of a per-point line: its grid index, without
/// parsing the embedded result. Returns `None` unless the line has the
/// exact canonical layout.
fn point_line_index(line: &str) -> Option<usize> {
    let rest = line.strip_prefix(POINT_PREFIX)?;
    let comma = rest.find(',')?;
    let index: usize = rest[..comma].parse().ok()?;
    if !rest[comma..].starts_with(",\"result\":{") || !line.ends_with("}}") {
        return None;
    }
    Some(index)
}

/// Annotation float formatting, mirroring the vendored `serde_json`
/// rendering (`0.0` for integral values, `Display` otherwise — never
/// scientific for the magnitudes traces hold).
fn fmt_f64(f: f64) -> String {
    if !f.is_finite() {
        "null".to_string()
    } else if f == f.trunc() && f.abs() < 1e16 {
        format!("{f:.1}")
    } else {
        format!("{f}")
    }
}

/// Minimal JSON string quoting for annotation fields (worker addrs and
/// endpoint labels never need exotic escapes, but stay correct).
fn json_string(s: &str) -> String {
    serde_json::to_string(&s.to_string()).expect("string serializes")
}

/// Mutable recording state behind the recorder's one lock.
struct RecorderInner {
    started: bool,
    /// Rendered per-point lines, slotted by grid index so the file is
    /// written in canonical order no matter the completion order.
    points: Vec<Option<String>>,
    /// Rendered `finished`/`cancelled` line.
    terminal: Option<String>,
    /// Rendered annotation lines, in record order.
    annotations: Vec<String>,
}

/// A flight recorder for one campaign run.
///
/// `Sync` and cheap enough to sit inside the engine's observer seam:
/// recording a point renders one JSON line under a mutex. Points are
/// slotted by grid index at record time, so the rendered trace is in
/// canonical order regardless of completion order — the normalization
/// that makes identical sweeps produce byte-identical causal streams.
///
/// Wall-clock instants never enter the trace: annotations carry
/// monotonic offsets from the recorder's creation (`off_secs`), and
/// transport keepalives (heartbeats) are invisible to the observer
/// seam, so they are structurally excluded.
pub struct TraceRecorder {
    header_line: String,
    trace_id: String,
    total: usize,
    started_at: Instant,
    inner: Mutex<RecorderInner>,
}

impl TraceRecorder {
    /// A recorder for one run of `spec`, minting its causality id.
    pub fn new(spec: &CampaignSpec) -> TraceRecorder {
        let trace_id = campaign_trace_id(spec);
        let total = spec.point_count();
        let header = TraceHeader {
            kind: "header".to_string(),
            v: TRACE_VERSION,
            engine_version: ENGINE_VERSION,
            trace_id: trace_id.clone(),
            name: spec.name.clone(),
            seed: spec.seed,
            points: total,
            spec: spec.clone(),
        };
        let header_line = serde_json::to_string(&header).expect("trace header serializes");
        TraceRecorder {
            header_line,
            trace_id,
            total,
            started_at: Instant::now(),
            inner: Mutex::new(RecorderInner {
                started: false,
                points: vec![None; total],
                terminal: None,
                annotations: Vec::new(),
            }),
        }
    }

    /// The campaign's deterministic causality id.
    pub fn trace_id(&self) -> &str {
        &self.trace_id
    }

    /// Total points the spec expands to.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Record one engine event (the observer seam: call this from the
    /// campaign observer, alongside whatever else it does).
    pub fn observe(&self, event: &PointEvent) {
        let m = TraceMetrics::get();
        match event {
            PointEvent::Started { .. } => {
                self.inner.lock().expect("trace lock").started = true;
                m.events_recorded.inc();
            }
            PointEvent::PointDone { result, .. } => {
                let index = result.point.index;
                let body = serde_json::to_string(result.as_ref()).expect("point result serializes");
                let line = format!("{POINT_PREFIX}{index},\"result\":{body}}}");
                let mut inner = self.inner.lock().expect("trace lock");
                if index < inner.points.len() {
                    inner.points[index] = Some(line);
                    m.events_recorded.inc();
                }
            }
            PointEvent::Finished { .. } => {
                let line = format!("{FINISHED_PREFIX}\"points\":{}}}", self.total);
                self.inner.lock().expect("trace lock").terminal = Some(line);
                m.events_recorded.inc();
            }
            PointEvent::Cancelled { done, total } => {
                let line = format!("{CANCELLED_PREFIX}\"done\":{done},\"total\":{total}}}");
                self.inner.lock().expect("trace lock").terminal = Some(line);
                m.events_recorded.inc();
            }
        }
    }

    /// Record the run's stage walls and cache counters as a `timing`
    /// annotation (call after the run, when all stages are known).
    pub fn record_stats(&self, stats: &RunStats) {
        self.push_annotation(format!(
            "{{\"kind\":\"timing\",\"t\":\"stages\",\"expansion_secs\":{},\"sweep_secs\":{},\
             \"aggregation_secs\":{},\"wall_secs\":{},\"simulated\":{},\"cache_hits\":{},\
             \"off_secs\":{}}}",
            fmt_f64(stats.expand_secs),
            fmt_f64(stats.sweep_secs),
            fmt_f64(stats.aggregate_secs),
            fmt_f64(stats.wall_secs),
            stats.simulated,
            stats.cache_hits,
            fmt_f64(self.off_secs()),
        ));
    }

    /// Record one lease-lifecycle transition (cluster fan-out):
    /// `phase` ∈ assigned/completed/failed/reassigned/split/local,
    /// `worker` the executing server, `[start, end)` the index range.
    pub fn record_lease(&self, phase: &str, worker: &str, start: usize, end: usize) {
        self.push_annotation(format!(
            "{{\"kind\":\"lease\",\"phase\":{},\"worker\":{},\"start\":{start},\
             \"end\":{end},\"off_secs\":{},\"trace\":\"{}\"}}",
            json_string(phase),
            json_string(worker),
            fmt_f64(self.off_secs()),
            self.trace_id,
        ));
    }

    /// Record one request-handling span (the reactor stamps every
    /// request it can attribute to this campaign).
    pub fn record_span(&self, endpoint: &str, secs: f64) {
        self.push_annotation(format!(
            "{{\"kind\":\"span\",\"endpoint\":{},\"secs\":{},\"off_secs\":{},\
             \"trace\":\"{}\"}}",
            json_string(endpoint),
            fmt_f64(secs),
            fmt_f64(self.off_secs()),
            self.trace_id,
        ));
    }

    /// Monotonic offset from campaign start — the only clock traces
    /// know about.
    fn off_secs(&self) -> f64 {
        self.started_at.elapsed().as_secs_f64()
    }

    fn push_annotation(&self, line: String) {
        self.inner
            .lock()
            .expect("trace lock")
            .annotations
            .push(line);
        TraceMetrics::get().events_recorded.inc();
    }

    /// Render the full trace document (causal stream in canonical
    /// order, then annotations), counting the bytes written.
    pub fn render(&self) -> String {
        let inner = self.inner.lock().expect("trace lock");
        let mut out = String::with_capacity(self.header_line.len() + 64 * self.total);
        out.push_str(&self.header_line);
        out.push('\n');
        if inner.started {
            out.push_str(&format!("{STARTED_PREFIX}\"total\":{}}}\n", self.total));
        }
        for line in inner.points.iter().flatten() {
            out.push_str(line);
            out.push('\n');
        }
        if let Some(terminal) = &inner.terminal {
            out.push_str(terminal);
            out.push('\n');
        }
        for line in &inner.annotations {
            out.push_str(line);
            out.push('\n');
        }
        TraceMetrics::get().bytes_written.add(out.len() as u64);
        out
    }

    /// Render and write the trace to `path`.
    pub fn write_to(&self, path: &Path) -> Result<(), TraceError> {
        fs::write(path, self.render())?;
        Ok(())
    }
}

/// A parsed trace: validated header plus the raw body lines.
#[derive(Debug, Clone)]
pub struct Trace {
    /// The validated header.
    pub header: TraceHeader,
    header_line: String,
    /// Raw lines after the header (causal events and annotations).
    lines: Vec<String>,
}

impl Trace {
    /// Parse a trace document, validating only the header (body lines
    /// stay raw until [`verify`](Trace::verify) or
    /// [`replay_on`](Trace::replay_on) walks them).
    pub fn parse(text: &str) -> Result<Trace, TraceError> {
        let mut lines = text.lines();
        let header_line = lines
            .by_ref()
            .find(|l| !l.trim().is_empty())
            .ok_or_else(|| TraceError::Header("empty trace".to_string()))?;
        let probe: serde_json::Value = serde_json::from_str(header_line)
            .map_err(|e| TraceError::Header(format!("first line is not JSON: {e}")))?;
        if probe["kind"].as_str() != Some("header") {
            return Err(TraceError::Header(
                "first line is not a trace header".to_string(),
            ));
        }
        let v = probe["v"]
            .as_u64()
            .ok_or_else(|| TraceError::Header("header has no version".to_string()))?
            as u32;
        if v > TRACE_VERSION {
            return Err(TraceError::Version {
                found: v,
                supported: TRACE_VERSION,
            });
        }
        let header: TraceHeader = serde_json::from_str(header_line)
            .map_err(|e| TraceError::Header(format!("header does not deserialize: {e}")))?;
        Ok(Trace {
            header,
            header_line: header_line.to_string(),
            lines: lines
                .filter(|l| !l.trim().is_empty())
                .map(|l| l.to_string())
                .collect(),
        })
    }

    /// Load and parse a trace file.
    pub fn load(path: &Path) -> Result<Trace, TraceError> {
        Trace::parse(&fs::read_to_string(path)?)
    }

    /// The byte-deterministic projection: header plus causal event
    /// lines, annotations stripped. Two recordings of the same
    /// spec+seed are identical here regardless of worker count, cache
    /// warmth, or cluster topology — this is what the CI gate compares.
    pub fn canonical_bytes(&self) -> String {
        let mut out = String::with_capacity(self.header_line.len() + 64 * self.lines.len());
        out.push_str(&self.header_line);
        out.push('\n');
        for line in &self.lines {
            if line.starts_with("{\"kind\":\"event\",") {
                out.push_str(line);
                out.push('\n');
            }
        }
        out
    }

    /// Validate the causal stream without parsing per-point payloads —
    /// the fast replay scan (line framing, canonical grid order, index
    /// coverage, terminal completeness).
    ///
    /// Strict mode returns the first divergence as an error; lenient
    /// mode collects all of them into the summary. Both count every
    /// divergence in `synapse_trace_replay_divergences_total`.
    pub fn verify(&self, mode: ReplayMode) -> Result<ReplaySummary, TraceError> {
        let total = self.header.points;
        let started_expected = format!("{STARTED_PREFIX}\"total\":{total}}}");
        let finished_expected = format!("{FINISHED_PREFIX}\"points\":{total}}}");
        let mut divergences = Vec::new();
        let mut started = false;
        let mut finished = false;
        let mut terminal = false;
        let mut next = 0usize;
        let mut points = 0usize;
        let mut annotations = 0usize;
        for (offset, line) in self.lines.iter().enumerate() {
            let line_no = offset + 2; // header is line 1
            if let Some(index) = point_line_index(line) {
                if terminal {
                    diverge(
                        mode,
                        &mut divergences,
                        format!("line {line_no}: point {index} after the terminal event"),
                    )?;
                }
                if index != next {
                    diverge(
                        mode,
                        &mut divergences,
                        format!("line {line_no}: expected point {next}, found {index}"),
                    )?;
                }
                next = index + 1;
                points += 1;
            } else if line.starts_with(STARTED_PREFIX) {
                if started || points > 0 {
                    diverge(
                        mode,
                        &mut divergences,
                        format!("line {line_no}: duplicate or late started event"),
                    )?;
                }
                if *line != started_expected {
                    diverge(
                        mode,
                        &mut divergences,
                        format!("line {line_no}: started event disagrees with header"),
                    )?;
                }
                started = true;
            } else if line.starts_with(FINISHED_PREFIX) {
                if *line != finished_expected || points != total {
                    diverge(
                        mode,
                        &mut divergences,
                        format!("line {line_no}: finished with {points}/{total} points present"),
                    )?;
                }
                finished = true;
                terminal = true;
            } else if line.starts_with(CANCELLED_PREFIX) {
                diverge(
                    mode,
                    &mut divergences,
                    format!("line {line_no}: trace records a cancelled sweep"),
                )?;
                terminal = true;
            } else if line.starts_with(TRUNCATED_PREFIX) {
                diverge(
                    mode,
                    &mut divergences,
                    format!("line {line_no}: event ring truncated before recording"),
                )?;
            } else if line.starts_with("{\"kind\":\"timing\"")
                || line.starts_with("{\"kind\":\"lease\"")
                || line.starts_with("{\"kind\":\"span\"")
            {
                annotations += 1;
            } else if line.contains("\"event\":\"heartbeat\"") {
                // Transport keepalive captured from a raw stream dump;
                // never part of the causal record.
            } else {
                let shown: String = line.chars().take(60).collect();
                diverge(
                    mode,
                    &mut divergences,
                    format!("line {line_no}: unrecognized line {shown:?}"),
                )?;
            }
        }
        if !started {
            diverge(mode, &mut divergences, "no started event".to_string())?;
        }
        if !finished {
            diverge(
                mode,
                &mut divergences,
                format!("trace ends without a finished event ({points}/{total} points)"),
            )?;
        }
        Ok(ReplaySummary {
            total,
            points,
            annotations,
            divergences,
        })
    }

    /// Re-drive an observer from the recorded causal stream, exactly
    /// as the live engine would have: `Started`, every point in grid
    /// order with a monotone `done` counter, then `Finished`. Strict
    /// by construction — any structural or parse failure is an error.
    ///
    /// Returns the recorded results (grid order) and synthesized run
    /// stats (every point "served from the record": zero simulated,
    /// zero wall time).
    pub fn replay_on(
        &self,
        observer: &(dyn Fn(PointEvent) + Sync),
    ) -> Result<(Vec<PointResult>, RunStats), TraceError> {
        let total = self.header.points;
        let mut results: Vec<Arc<PointResult>> = Vec::with_capacity(total);
        observer(PointEvent::Started { total });
        for (offset, line) in self.lines.iter().enumerate() {
            let line_no = offset + 2;
            if let Some(index) = point_line_index(line) {
                if index != results.len() {
                    return Err(TraceError::Divergence(format!(
                        "line {line_no}: expected point {}, found {index}",
                        results.len()
                    )));
                }
                let parsed: PointLine =
                    serde_json::from_str(line).map_err(|e| TraceError::Corrupt {
                        line: line_no,
                        reason: format!("point does not deserialize: {e}"),
                    })?;
                let shared = Arc::new(parsed.result);
                observer(PointEvent::PointDone {
                    result: shared.clone(),
                    cached: true,
                    done: index + 1,
                    total,
                });
                results.push(shared);
            } else if line.starts_with(CANCELLED_PREFIX) {
                return Err(TraceError::Divergence(
                    "trace records a cancelled sweep".to_string(),
                ));
            } else if line.starts_with(TRUNCATED_PREFIX) {
                return Err(TraceError::Divergence(
                    "event ring truncated before recording".to_string(),
                ));
            }
        }
        if results.len() != total {
            return Err(TraceError::Divergence(format!(
                "trace holds {}/{total} points",
                results.len()
            )));
        }
        let stats = RunStats {
            points: total,
            simulated: 0,
            cache_hits: total,
            wall_secs: 0.0,
            expand_secs: 0.0,
            sweep_secs: 0.0,
            aggregate_secs: 0.0,
        };
        observer(PointEvent::Finished { stats });
        let owned = results
            .into_iter()
            .map(|shared| Arc::try_unwrap(shared).unwrap_or_else(|held| (*held).clone()))
            .collect();
        Ok((owned, stats))
    }

    /// Rebuild the deterministic [`CampaignReport`] from the recorded
    /// results — byte-identical to the live run's report, with the
    /// simulator never invoked.
    pub fn reconstruct_report(&self) -> Result<CampaignReport, TraceError> {
        let (results, _) = self.replay_on(&|_| {})?;
        Ok(CampaignReport::assemble(&self.header.spec, &results)?)
    }

    /// Human-readable trace summary: provenance, per-stage walls, and
    /// per-worker lease timelines reconstructed from the annotations.
    pub fn summary(&self) -> String {
        let h = &self.header;
        let mut out = format!(
            "trace {} v{} — campaign {:?}: {} points, seed {}, engine v{}\n",
            h.trace_id, h.v, h.name, h.points, h.seed, h.engine_version
        );
        let mut leases: Vec<(String, String, usize, usize, f64)> = Vec::new();
        let mut spans: std::collections::BTreeMap<String, (usize, f64)> =
            std::collections::BTreeMap::new();
        for line in &self.lines {
            if !line.starts_with("{\"kind\":\"") {
                continue;
            }
            let Ok(value) = serde_json::from_str::<serde_json::Value>(line) else {
                continue;
            };
            match value["kind"].as_str() {
                Some("timing") => {
                    out.push_str(&format!(
                        "stages: expansion {:.3}s · sweep {:.3}s · aggregation {:.3}s · \
                         wall {:.3}s ({} simulated, {} cache hits)\n",
                        value["expansion_secs"].as_f64().unwrap_or(0.0),
                        value["sweep_secs"].as_f64().unwrap_or(0.0),
                        value["aggregation_secs"].as_f64().unwrap_or(0.0),
                        value["wall_secs"].as_f64().unwrap_or(0.0),
                        value["simulated"].as_u64().unwrap_or(0),
                        value["cache_hits"].as_u64().unwrap_or(0),
                    ));
                }
                Some("lease") => {
                    leases.push((
                        value["worker"].as_str().unwrap_or("?").to_string(),
                        value["phase"].as_str().unwrap_or("?").to_string(),
                        value["start"].as_u64().unwrap_or(0) as usize,
                        value["end"].as_u64().unwrap_or(0) as usize,
                        value["off_secs"].as_f64().unwrap_or(0.0),
                    ));
                }
                Some("span") => {
                    let endpoint = value["endpoint"].as_str().unwrap_or("?").to_string();
                    let entry = spans.entry(endpoint).or_insert((0, 0.0));
                    entry.0 += 1;
                    entry.1 += value["secs"].as_f64().unwrap_or(0.0);
                }
                _ => {}
            }
        }
        if !leases.is_empty() {
            let mut workers: Vec<&str> = leases.iter().map(|l| l.0.as_str()).collect();
            workers.sort_unstable();
            workers.dedup();
            out.push_str("workers:\n");
            for worker in workers {
                out.push_str(&format!("  {worker}:\n"));
                for (w, phase, start, end, off) in &leases {
                    if w == worker {
                        out.push_str(&format!(
                            "    +{off:.3}s {phase:<10} [{start}, {end}) ({} points)\n",
                            end.saturating_sub(*start)
                        ));
                    }
                }
            }
        }
        if !spans.is_empty() {
            out.push_str("request spans:\n");
            for (endpoint, (count, secs)) in &spans {
                out.push_str(&format!(
                    "  {endpoint:<28} {count:>5} requests, {secs:.3}s handling\n"
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synapse_campaign::{run_campaign_on, CancelToken, ResultCache, RunConfig};

    fn spec() -> CampaignSpec {
        CampaignSpec::from_toml(
            r#"
            name = "trace-unit"
            seed = 7
            machines = ["thinkie", "comet"]
            kernels = ["asm", "c"]

            [[workloads]]
            app = "gromacs"
            steps = [10000, 50000]
            "#,
        )
        .unwrap()
    }

    /// Run one cold sweep with a recorder attached; return the trace
    /// text and the live outcome.
    fn record_run(workers: usize) -> (String, synapse_campaign::CampaignOutcome) {
        let s = spec();
        let recorder = TraceRecorder::new(&s);
        let cache = ResultCache::in_memory();
        let outcome = run_campaign_on(
            &s,
            &RunConfig { workers },
            &cache,
            &|event| recorder.observe(&event),
            &CancelToken::new(),
        )
        .unwrap();
        recorder.record_stats(&outcome.stats);
        (recorder.render(), outcome)
    }

    #[test]
    fn record_verify_reconstruct_roundtrip() {
        let (text, outcome) = record_run(4);
        let trace = Trace::parse(&text).unwrap();
        assert_eq!(trace.header.v, TRACE_VERSION);
        assert_eq!(trace.header.engine_version, ENGINE_VERSION);
        assert_eq!(trace.header.points, 8);
        assert_eq!(trace.header.trace_id, campaign_trace_id(&spec()));
        let summary = trace.verify(ReplayMode::Strict).unwrap();
        assert!(summary.is_clean());
        assert_eq!(summary.points, 8);
        assert!(summary.annotations >= 1, "timing annotation present");
        let report = trace.reconstruct_report().unwrap();
        assert_eq!(
            report.to_json().unwrap(),
            outcome.report.to_json().unwrap(),
            "replayed report is byte-identical to the live run's"
        );
    }

    #[test]
    fn identical_sweeps_record_byte_identical_causal_streams() {
        // Different worker counts: completion order differs wildly,
        // canonical recordings must not.
        let (a, _) = record_run(1);
        let (b, _) = record_run(8);
        let ta = Trace::parse(&a).unwrap();
        let tb = Trace::parse(&b).unwrap();
        assert_eq!(
            ta.canonical_bytes(),
            tb.canonical_bytes(),
            "identical sweeps must produce byte-identical causal streams"
        );
        // Whatever differs between the full files is annotation-only
        // (timing offsets are execution-dependent by design).
        for (la, lb) in a.lines().zip(b.lines()) {
            if la != lb {
                assert!(
                    la.starts_with("{\"kind\":\"timing\"")
                        || la.starts_with("{\"kind\":\"lease\"")
                        || la.starts_with("{\"kind\":\"span\""),
                    "non-annotation line differs: {la}"
                );
            }
        }
    }

    #[test]
    fn replay_on_redrives_the_observer_seam() {
        let (text, _) = record_run(2);
        let trace = Trace::parse(&text).unwrap();
        let events: Mutex<Vec<String>> = Mutex::new(Vec::new());
        let (results, stats) = trace
            .replay_on(&|event| {
                let tag = match event {
                    PointEvent::Started { total } => format!("started:{total}"),
                    PointEvent::PointDone {
                        result,
                        cached,
                        done,
                        ..
                    } => format!("point:{}:{}:{}", result.point.index, cached, done),
                    PointEvent::Finished { .. } => "finished".to_string(),
                    PointEvent::Cancelled { .. } => "cancelled".to_string(),
                };
                events.lock().unwrap().push(tag);
            })
            .unwrap();
        assert_eq!(results.len(), 8);
        assert_eq!(stats.simulated, 0);
        assert_eq!(stats.cache_hits, 8);
        let events = events.into_inner().unwrap();
        assert_eq!(events.len(), 10, "start + 8 points + finish");
        assert_eq!(events[0], "started:8");
        assert_eq!(events[1], "point:0:true:1");
        assert_eq!(events[8], "point:7:true:8");
        assert_eq!(events[9], "finished");
    }

    #[test]
    fn future_version_fails_cleanly() {
        let (text, _) = record_run(1);
        // Object keys render sorted, so the version is the header
        // line's final field.
        let bumped = text.replacen("\"v\":1}", "\"v\":99}", 1);
        match Trace::parse(&bumped) {
            Err(TraceError::Version { found, supported }) => {
                assert_eq!(found, 99);
                assert_eq!(supported, TRACE_VERSION);
            }
            Err(other) => panic!("expected version error, got {other}"),
            Ok(_) => panic!("expected version error, got a parsed trace"),
        }
        // And the message tells the operator what to do.
        let msg = Trace::parse(&bumped).unwrap_err().to_string();
        assert!(msg.contains("newer than supported"));
    }

    #[test]
    fn garbage_trailing_lines_lenient_recovers_strict_fails() {
        let (text, _) = record_run(2);
        let dirty = format!("{text}not json at all\n{{\"half\":");
        let trace = Trace::parse(&dirty).unwrap();
        assert!(matches!(
            trace.verify(ReplayMode::Strict),
            Err(TraceError::Divergence(_))
        ));
        let summary = trace.verify(ReplayMode::Lenient).unwrap();
        assert_eq!(summary.points, 8, "all real points still counted");
        assert_eq!(summary.divergences.len(), 2, "one per garbage line");
        // The causal stream is still fully reconstructable.
        assert!(trace.reconstruct_report().is_ok());
    }

    #[test]
    fn truncation_marker_strict_fails_lenient_reports() {
        let (text, _) = record_run(2);
        // Splice a ring-truncation marker ahead of the terminal event,
        // as a server whose event ring overflowed would have.
        let marker = format!("{TRUNCATED_PREFIX}\"dropped\":3}}");
        let finished = format!("{FINISHED_PREFIX}\"points\":8}}");
        let spliced = text.replace(&finished, &format!("{marker}\n{finished}"));
        let trace = Trace::parse(&spliced).unwrap();
        let err = trace.verify(ReplayMode::Strict).unwrap_err();
        assert!(err.to_string().contains("truncated"));
        let summary = trace.verify(ReplayMode::Lenient).unwrap();
        assert_eq!(summary.divergences.len(), 1);
        assert!(summary.divergences[0].contains("truncated"));
        assert!(matches!(
            trace.replay_on(&|_| {}),
            Err(TraceError::Divergence(_))
        ));
    }

    #[test]
    fn missing_terminal_and_missing_points_diverge() {
        let (text, _) = record_run(2);
        let finished = format!("{FINISHED_PREFIX}\"points\":8}}");
        // Drop the finished line and the last point line.
        let truncated: Vec<&str> = text
            .lines()
            .filter(|l| *l != finished && point_line_index(l) != Some(7))
            .collect();
        let trace = Trace::parse(&truncated.join("\n")).unwrap();
        assert!(trace.verify(ReplayMode::Strict).is_err());
        let summary = trace.verify(ReplayMode::Lenient).unwrap();
        assert_eq!(summary.points, 7);
        assert!(!summary.is_clean());
        assert!(
            trace.reconstruct_report().is_err(),
            "7/8 points is not a report"
        );
    }

    #[test]
    fn heartbeats_are_tolerated_and_never_canonical() {
        let (text, _) = record_run(2);
        let with_pulse = format!("{text}{{\"event\":\"heartbeat\"}}\n");
        let trace = Trace::parse(&with_pulse).unwrap();
        assert!(trace.verify(ReplayMode::Strict).unwrap().is_clean());
        assert!(!trace.canonical_bytes().contains("heartbeat"));
    }

    #[test]
    fn cancelled_trace_is_a_divergence() {
        let s = spec();
        let recorder = TraceRecorder::new(&s);
        recorder.observe(&PointEvent::Started { total: 8 });
        recorder.observe(&PointEvent::Cancelled { done: 3, total: 8 });
        let trace = Trace::parse(&recorder.render()).unwrap();
        assert!(trace.verify(ReplayMode::Strict).is_err());
        let summary = trace.verify(ReplayMode::Lenient).unwrap();
        assert!(summary.divergences.iter().any(|d| d.contains("cancelled")));
    }

    #[test]
    fn annotations_render_into_the_summary() {
        let (text, _) = record_run(2);
        let trace = Trace::parse(&text).unwrap();
        // Graft cluster/span annotations on, as a coordinator would.
        let recorder = TraceRecorder::new(&spec());
        recorder.record_lease("assigned", "127.0.0.1:8801", 0, 4);
        recorder.record_lease("completed", "127.0.0.1:8801", 0, 4);
        recorder.record_span("/campaigns/{id}/events", 0.002);
        let annotated: String = recorder
            .render()
            .lines()
            .filter(|l| l.starts_with("{\"kind\":\"lease\"") || l.starts_with("{\"kind\":\"span\""))
            .fold(text, |acc, l| format!("{acc}{l}\n"));
        let trace = Trace::parse(&annotated).unwrap_or(trace);
        let summary = trace.summary();
        assert!(summary.contains("trace t"));
        assert!(summary.contains("stages:"));
        assert!(summary.contains("127.0.0.1:8801"));
        assert!(summary.contains("assigned"));
        assert!(summary.contains("/campaigns/{id}/events"));
    }

    #[test]
    fn trace_id_is_deterministic_and_seed_sensitive() {
        let a = campaign_trace_id(&spec());
        let b = campaign_trace_id(&spec());
        assert_eq!(a, b);
        assert!(a.starts_with('t') && a.len() == 17);
        let mut reseeded = spec();
        reseeded.seed = 8;
        assert_ne!(a, campaign_trace_id(&reseeded));
    }
}
