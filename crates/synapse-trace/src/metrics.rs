//! The flight recorder's handles into the process-wide telemetry
//! registry.
//!
//! Resolved once (behind a `OnceLock`) and then updated through plain
//! atomics, so recording an event costs two relaxed increments on top
//! of rendering the line. Series follow the workspace naming scheme
//! (`synapse_trace_<name>`, base units, `_total` on counters); the
//! full catalog lives in the README's Observability section.

use std::sync::{Arc, OnceLock};

use synapse_telemetry::{global, Counter};

/// Recording and replay-validation counters.
pub(crate) struct TraceMetrics {
    /// Causal events captured by recorders in this process.
    pub events_recorded: Arc<Counter>,
    /// Trace bytes rendered to files or response bodies.
    pub bytes_written: Arc<Counter>,
    /// Divergences found while replaying traces.
    pub replay_divergences: Arc<Counter>,
}

impl TraceMetrics {
    /// The process-wide handles (registering the series on first use).
    pub fn get() -> &'static TraceMetrics {
        static METRICS: OnceLock<TraceMetrics> = OnceLock::new();
        METRICS.get_or_init(|| {
            let r = global();
            TraceMetrics {
                events_recorded: r.counter(
                    "synapse_trace_events_recorded_total",
                    "Causal events captured by trace recorders.",
                ),
                bytes_written: r.counter(
                    "synapse_trace_bytes_written_total",
                    "Trace bytes rendered to files or response bodies.",
                ),
                replay_divergences: r.counter(
                    "synapse_trace_replay_divergences_total",
                    "Divergences found while replaying traces.",
                ),
            }
        })
    }
}
