//! E.2 — Profiling correctness and emulation portability (Figs 5, 7).

use synapse::emulator::{EmulationPlan, Emulator};
use synapse_model::stats::diff_pct;
use synapse_sim::{machine_by_name, thinkie, MachineModel, Noise};
use synapse_workloads::AppModel;

use crate::util::{repeated_runs, summarize, STEPS_E12};

/// One row of an emulation-vs-execution comparison.
struct Row {
    steps: u64,
    app_tx: f64,
    emu_tx: f64,
}

impl Row {
    fn diff(&self) -> f64 {
        diff_pct(self.emu_tx, self.app_tx).unwrap_or(f64::NAN)
    }
}

/// Emulate the thinkie-profiled application on `target` across the
/// E.2 step sweep.
fn sweep(target: &MachineModel) -> Vec<Row> {
    let app = AppModel::default();
    let profiling_host = thinkie();
    let emulator = Emulator::new(EmulationPlan::default());
    STEPS_E12
        .iter()
        .map(|&steps| {
            let profile = app.simulate_profile(
                &profiling_host,
                steps,
                1.0,
                &mut Noise::new(7 ^ steps, 0.01),
            );
            let app_tx = summarize(&repeated_runs(&app, target, steps, 5, 50), |r| r.tx).mean;
            let emu_tx = emulator.simulate(&profile, target).tx;
            Row {
                steps,
                app_tx,
                emu_tx,
            }
        })
        .collect()
}

fn render(title: &str, rows: &[Row]) -> String {
    let mut out = format!("{title}\n\n");
    out.push_str(&format!(
        "{:>10} {:>14} {:>14} {:>10}\n",
        "tag_step", "execution (s)", "emulation (s)", "diff (%)"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:>10} {:>14.2} {:>14.2} {:>+10.1}\n",
            r.steps,
            r.app_tx,
            r.emu_tx,
            r.diff()
        ));
    }
    out
}

/// Fig. 5 — Emulation vs execution on the profiling host: agreement
/// once runtimes exceed the ~1 s emulator startup delay.
pub fn run_fig05() -> String {
    let rows = sweep(&thinkie());
    let mut out = render(
        "Fig 5 — Emulation vs Execution (thinkie): emulated runtimes agree with\n\
         application runtimes for runs longer than the Synapse startup delay (~1 s).",
        &rows,
    );
    out.push_str("\n(short runs show large relative diff: the fixed startup dominates)\n");
    out
}

/// Fig. 7 — Emulation vs execution on Stampede (top, converging
/// ~-40 %) and Archer (bottom, converging ~+33 %).
pub fn run_fig07() -> String {
    let mut out = String::new();
    for (name, note) in [
        (
            "stampede",
            "emulation consistently faster; difference converges to ~-40 %",
        ),
        (
            "archer",
            "emulation consistently slower; difference converges to ~+33 %",
        ),
    ] {
        let machine = machine_by_name(name).expect("catalog machine");
        let rows = sweep(&machine);
        out.push_str(&render(
            &format!("Fig 7 — Emulation vs Execution ({name}): {note}."),
            &rows,
        ));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig05_converges_to_agreement_on_thinkie() {
        let rows = sweep(&thinkie());
        let last = rows.last().unwrap();
        assert!(
            last.diff().abs() < 5.0,
            "long runs agree on the profiling host: {:+.1}%",
            last.diff()
        );
        // Short runs are startup-dominated: larger relative diff.
        assert!(rows[0].diff().abs() > last.diff().abs());
    }

    #[test]
    fn fig07_stampede_converges_to_minus_forty() {
        let rows = sweep(&machine_by_name("stampede").unwrap());
        let last = rows.last().unwrap();
        assert!(
            last.diff() < -30.0 && last.diff() > -50.0,
            "stampede converged diff {:+.1}% (paper ~-40%)",
            last.diff()
        );
        // Faster on every converged row.
        for r in &rows[3..] {
            assert!(
                r.emu_tx < r.app_tx,
                "steps {}: consistent direction",
                r.steps
            );
        }
    }

    #[test]
    fn fig07_archer_converges_to_plus_thirty_three() {
        let rows = sweep(&machine_by_name("archer").unwrap());
        let last = rows.last().unwrap();
        assert!(
            last.diff() > 25.0 && last.diff() < 45.0,
            "archer converged diff {:+.1}% (paper ~+33%)",
            last.diff()
        );
        for r in &rows[3..] {
            assert!(
                r.emu_tx > r.app_tx,
                "steps {}: consistent direction",
                r.steps
            );
        }
    }

    #[test]
    fn scaling_trend_is_captured_everywhere() {
        // "the Tx of the application and its emulation resemble the
        // essential application's execution characteristics".
        for name in ["thinkie", "stampede", "archer"] {
            let rows = sweep(&machine_by_name(name).unwrap());
            for w in rows.windows(2) {
                assert!(w[1].app_tx > w[0].app_tx);
                assert!(w[1].emu_tx > w[0].emu_tx);
            }
        }
    }

    #[test]
    fn outputs_render() {
        assert!(run_fig05().contains("tag_step"));
        let f7 = run_fig07();
        assert!(f7.contains("stampede"));
        assert!(f7.contains("archer"));
    }
}
