//! Table 1: the Synapse metric registry in the paper's layout.

use synapse_model::metrics;

/// Render Table 1.
pub fn run() -> String {
    let mut out = String::from("Table 1: List of Synapse metrics and their usage\n");
    out.push_str(
        "(+ supported, - unsupported, (+) partial, (-) planned; columns: \
         integrated total, sampled over time, derived, used in emulation)\n\n",
    );
    out.push_str(&metrics::render_table1());
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn table_has_all_resource_blocks() {
        let t = super::run();
        for block in ["System", "Compute", "Storage", "Memory", "Network"] {
            assert!(t.contains(block), "missing {block}");
        }
        // Spot-check the paper's notation appears.
        assert!(t.contains("(+)"));
        assert!(t.contains("(-)"));
    }
}
