//! Campaign throughput benchmark (ROADMAP "Campaign throughput
//! benchmark" item).
//!
//! Measures `synapse-campaign` points/sec for the four pipeline stages
//! separately, so later PRs can grow the sweep engine against a
//! number:
//!
//! * **expansion** — cartesian spec → `ScenarioPoint` grid;
//! * **cache_lookup** — a fully-warm sweep (every point a cache hit);
//! * **simulation** — cold sweep through the virtual-time simulator;
//! * **aggregation** — results → `CampaignReport` (axis slices,
//!   percentiles, reference errors);
//! * **serve_throughput** — the same warm sweep submitted to an
//!   in-process `synapse serve` over real sockets and consumed from
//!   its NDJSON event stream, so the HTTP + queue + streaming overhead
//!   is tracked against the direct `cache_lookup` rate from day one;
//! * **cluster_throughput** — the same warm sweep submitted
//!   `?cluster=1` to a coordinator fanning leases out over two local
//!   worker servers, so the lease/merge overhead of distributed
//!   execution is tracked against `serve_throughput`;
//! * **serve_concurrency** — the warm serve path again, but with 256
//!   watcher connections holding open event streams on a live sweep:
//!   the reactor front must keep its throughput while juggling
//!   hundreds of idle watchers on one thread;
//! * **connection_churn** — complete request round trips (connect,
//!   parse, handle, respond, close) per second under that same
//!   watcher load;
//! * **watcher_aggregate** — a completed job's event stream replayed
//!   in aggregate mode (`?aggregates=1`): lifecycle + snapshot deltas,
//!   no per-point lines. The document also records the byte sizes of
//!   one raw and one aggregate replay of the same job, so CI can
//!   assert the aggregate stream is O(slices), not O(points);
//! * **trace_replay** — strict-mode validation of a recorded flight
//!   trace (parse + causal verify), the operation the CI determinism
//!   gate runs instead of re-simulating: its rate floor is a large
//!   multiple of `simulation`.
//!
//! Each stage repeats until a minimum wall-clock budget is consumed,
//! so a single fast iteration cannot produce a garbage rate. `run()`
//! renders the rates as the JSON document CI uploads as
//! `BENCH_campaign.json`.

use std::time::Instant;

use synapse_campaign::{expand, runner, CampaignReport, CampaignSpec, ResultCache, RunConfig};

/// Minimum wall-clock seconds each stage is measured over.
const MIN_STAGE_SECS: f64 = 0.25;

/// Throughput of one pipeline stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StageRate {
    /// Stage name (`expansion` | `cache_lookup` | `simulation` |
    /// `aggregation` | `serve_throughput`).
    pub stage: &'static str,
    /// Points processed across all timed iterations.
    pub points: usize,
    /// Wall-clock seconds consumed.
    pub secs: f64,
}

impl StageRate {
    /// Stage throughput in points per second.
    pub fn points_per_sec(&self) -> f64 {
        if self.secs <= 0.0 {
            return 0.0;
        }
        self.points as f64 / self.secs
    }
}

/// Repeat `stage_once` (which returns points processed) until the
/// minimum measurement budget is spent.
fn measure(stage: &'static str, mut stage_once: impl FnMut() -> usize) -> StageRate {
    let started = Instant::now();
    let mut points = 0;
    loop {
        points += stage_once();
        if started.elapsed().as_secs_f64() >= MIN_STAGE_SECS {
            break;
        }
    }
    StageRate {
        stage,
        points,
        secs: started.elapsed().as_secs_f64(),
    }
}

/// A wide spec exercising every axis: ~10k points per expansion.
fn expansion_spec() -> CampaignSpec {
    let steps: Vec<String> = (1..=24).map(|i| (i * 5_000).to_string()).collect();
    let steps = steps.join(", ");
    CampaignSpec::from_toml(&format!(
        r#"
        name = "bench-expansion"
        seed = 2016
        machines = ["thinkie", "stampede", "archer", "supermic", "comet", "titan"]
        kernels = ["asm", "c", "spin"]
        modes = ["openmp", "mpi"]
        threads = [1, 4, 8]
        io_blocks = [65536, 1048576]

        [[workloads]]
        app = "gromacs"
        steps = [{steps}]

        [[workloads]]
        app = "amber"
        steps = [{steps}]
        "#
    ))
    .expect("expansion bench spec parses")
}

/// A small-but-real spec the simulation stages run end to end.
fn simulation_spec() -> CampaignSpec {
    CampaignSpec::from_toml(
        r#"
        name = "bench-simulation"
        seed = 2016
        machines = ["thinkie", "stampede", "comet", "titan"]
        kernels = ["asm", "c"]
        modes = ["openmp", "mpi"]
        threads = [1, 8]

        [[workloads]]
        app = "gromacs"
        steps = [10000, 100000]

        [[workloads]]
        app = "amber"
        steps = [100000]
        "#,
    )
    .expect("simulation bench spec parses")
}

/// Byte sizes of one raw and one aggregate-mode replay of the same
/// completed job — the O(points) vs O(slices) contrast.
#[derive(Debug, Clone, Copy)]
pub struct WatcherBytes {
    /// Payload bytes of a full raw replay (per-point lines included).
    pub raw: usize,
    /// Payload bytes of an aggregate-mode replay of the same job.
    pub aggregate: usize,
}

/// Run all stages and return their rates, in pipeline order.
pub fn stage_rates() -> Vec<StageRate> {
    stage_rates_with_bytes().0
}

/// [`stage_rates`] plus the watcher-stream byte contrast.
pub fn stage_rates_with_bytes() -> (Vec<StageRate>, WatcherBytes) {
    let expansion = {
        let spec = expansion_spec();
        measure("expansion", || expand(&spec).len())
    };

    let sim_spec = simulation_spec();
    let sim_points = expand(&sim_spec);
    let config = RunConfig::default();

    let simulation = measure("simulation", || {
        // A fresh cache every iteration keeps this stage cold.
        let cache = ResultCache::in_memory();
        let (_, stats) = runner::run_points(&sim_points, &cache, &config).expect("bench sweep");
        assert_eq!(stats.simulated, sim_points.len());
        stats.points
    });

    let warm = ResultCache::in_memory();
    let (results, _) = runner::run_points(&sim_points, &warm, &config).expect("warm-up sweep");
    let cache_lookup = measure("cache_lookup", || {
        let (_, stats) = runner::run_points(&sim_points, &warm, &config).expect("warm sweep");
        assert_eq!(stats.cache_hits, sim_points.len());
        stats.points
    });

    let aggregation = measure("aggregation", || {
        let report = CampaignReport::assemble(&sim_spec, &results).expect("bench report");
        report.points
    });

    let serve_throughput = measure_serve(&sim_spec);
    let cluster_throughput = measure_cluster(&sim_spec);
    let concurrency = measure_serve_concurrency(&sim_spec);
    let (watcher_aggregate, watcher_bytes) = measure_watcher_aggregate(&sim_spec);
    let trace_replay = measure_trace_replay(&sim_spec);

    let mut stages = vec![
        expansion,
        cache_lookup,
        simulation,
        aggregation,
        serve_throughput,
        cluster_throughput,
    ];
    stages.extend(concurrency);
    stages.push(watcher_aggregate);
    stages.push(trace_replay);
    (stages, watcher_bytes)
}

/// The aggregate-watcher path: one job swept to completion, then its
/// stream replayed in aggregate mode repeatedly. Also measures the
/// byte sizes of one raw and one aggregate replay of that same job —
/// the raw replay carries every per-point line, the aggregate one only
/// lifecycle events and snapshot deltas.
fn measure_watcher_aggregate(spec: &CampaignSpec) -> (StageRate, WatcherBytes) {
    let server = synapse_server::Server::bind(synapse_server::ServerConfig {
        addr: "127.0.0.1:0".into(),
        handler_threads: 1,
        ..Default::default()
    })
    .expect("bind watcher bench server");
    let addr = server.local_addr().expect("server addr").to_string();
    let handle = server.handle().expect("server handle");
    let join = std::thread::spawn(move || server.run().expect("watcher bench server run"));
    let client = synapse_server::Client::new(addr);
    let spec_json = serde_json::to_string(spec).expect("bench spec serializes");

    let (ack, summary) = client
        .submit_watch(&spec_json, |_| true)
        .expect("bench watcher submit");
    assert_eq!(summary["event"].as_str(), Some("completed"));
    let id = ack["id"].as_str().expect("job id").to_string();

    let mut raw = 0usize;
    client
        .watch(&id, |line| {
            raw += line.len() + 1;
            true
        })
        .expect("bench raw replay");
    let mut aggregate = 0usize;
    client
        .watch_aggregates(&id, |line| {
            aggregate += line.len() + 1;
            true
        })
        .expect("bench aggregate replay");

    let rate = measure("watcher_aggregate", || {
        let summary = client
            .watch_aggregates(&id, |_| true)
            .expect("bench aggregate watch");
        summary["points"].as_u64().expect("points") as usize
    });

    handle.shutdown();
    join.join().expect("watcher bench server thread");
    (rate, WatcherBytes { raw, aggregate })
}

/// Strict replay validation of a recorded trace: the sweep is recorded
/// once (untimed), then each iteration parses the document and runs
/// the strict causal verify — exactly what the CI determinism gate
/// does instead of re-simulating the campaign.
fn measure_trace_replay(spec: &CampaignSpec) -> StageRate {
    let recorder = synapse_trace::TraceRecorder::new(spec);
    let cache = ResultCache::in_memory();
    let outcome = synapse_campaign::run_campaign_on(
        spec,
        &RunConfig::default(),
        &cache,
        &|event| recorder.observe(&event),
        &synapse_campaign::CancelToken::new(),
    )
    .expect("bench recording sweep");
    recorder.record_stats(&outcome.stats);
    let text = recorder.render();
    measure("trace_replay", || {
        let trace = synapse_trace::Trace::parse(&text).expect("bench trace parses");
        let summary = trace
            .verify(synapse_trace::ReplayMode::Strict)
            .expect("bench trace replays strictly");
        assert!(summary.is_clean());
        summary.points
    })
}

/// One warm submission drained through its event stream (single
/// `?watch=1` round trip); returns the completed point count.
fn submit_and_drain(client: &synapse_server::Client, spec_json: &str) -> usize {
    let (_ack, summary) = client
        .submit_watch(spec_json, |_| true)
        .expect("bench submit+watch");
    assert_eq!(summary["event"].as_str(), Some("completed"));
    summary["points"].as_u64().expect("points") as usize
}

/// Submitted-points/sec through the full HTTP + queue + stream path:
/// an in-process server with a pre-warmed cache, the bench spec
/// submitted repeatedly and every event stream drained to completion.
/// Comparing against `cache_lookup` isolates the server overhead.
fn measure_serve(spec: &CampaignSpec) -> StageRate {
    let server = synapse_server::Server::bind(synapse_server::ServerConfig {
        addr: "127.0.0.1:0".into(),
        handler_threads: 1,
        ..Default::default()
    })
    .expect("bind bench server");
    let addr = server.local_addr().expect("bench server addr").to_string();
    let handle = server.handle().expect("bench server handle");
    let join = std::thread::spawn(move || server.run().expect("bench server run"));
    let client = synapse_server::Client::new(addr);
    let spec_json = serde_json::to_string(spec).expect("bench spec serializes");

    // Warm-up submission: populates the shared cache (untimed), so the
    // measured iterations compare against the warm `cache_lookup`
    // stage.
    submit_and_drain(&client, &spec_json);
    let rate = measure("serve_throughput", || submit_and_drain(&client, &spec_json));

    handle.shutdown();
    join.join().expect("bench server thread");
    rate
}

/// The reactor-front scale stages: warm submitted-points/sec while 256
/// watcher connections hold open event streams on a live sweep
/// (`serve_concurrency`), plus one-shot request round trips per second
/// through the same front (`connection_churn`). Before the epoll
/// reactor each watcher pinned a thread; now they pin file
/// descriptors, and this stage keeps that property honest.
fn measure_serve_concurrency(spec: &CampaignSpec) -> Vec<StageRate> {
    use std::io::Write as _;

    const WATCHERS: usize = 256;
    let server = synapse_server::Server::bind(synapse_server::ServerConfig {
        addr: "127.0.0.1:0".into(),
        queue_workers: 2,
        job_workers: 1,
        max_connections: WATCHERS + 64,
        ..Default::default()
    })
    .expect("bind concurrency server");
    let addr = server.local_addr().expect("server addr");
    let handle = server.handle().expect("server handle");
    let join = std::thread::spawn(move || server.run().expect("concurrency server run"));
    let client = synapse_server::Client::new(addr.to_string());
    let spec_json = serde_json::to_string(spec).expect("bench spec serializes");
    submit_and_drain(&client, &spec_json); // warm the cache (untimed)

    // A slow cold sweep occupies one queue worker for the duration:
    // big-step points land at a trickle, so the watchers attached to
    // its stream sit essentially idle while still being real, open,
    // reactor-owned connections.
    let hog_spec = CampaignSpec::from_toml(
        r#"
        name = "bench-hog"
        seed = 99
        machines = ["thinkie", "stampede", "archer", "supermic", "comet", "titan"]
        kernels = ["asm", "c", "spin"]
        modes = ["openmp", "mpi"]

        [[workloads]]
        app = "gromacs"
        steps = [1000000, 2000000]

        [[workloads]]
        app = "amber"
        steps = [1000000, 2000000]
        "#,
    )
    .expect("hog spec parses");
    let hog_json = serde_json::to_string(&hog_spec).expect("hog serializes");
    let hog = client.submit(&hog_json).expect("hog submit")["id"]
        .as_str()
        .expect("hog id")
        .to_string();

    let mut watchers = Vec::with_capacity(WATCHERS);
    for _ in 0..WATCHERS {
        let mut stream = std::net::TcpStream::connect(addr).expect("watcher connect");
        write!(
            stream,
            "GET /campaigns/{hog}/events HTTP/1.1\r\nHost: bench\r\n\r\n"
        )
        .expect("watcher request");
        watchers.push(stream);
    }

    // Warm submissions through the loaded front (the other queue
    // worker is free; the reactor is juggling 256 open streams).
    let rate = measure("serve_concurrency", || {
        submit_and_drain(&client, &spec_json)
    });
    // Connection churn: complete accept→parse→handle→respond→close
    // round trips per second under the same load.
    let churn = measure("connection_churn", || {
        client.healthz().expect("bench healthz");
        1
    });

    let _ = client.cancel(&hog);
    drop(watchers);
    handle.shutdown();
    join.join().expect("concurrency server thread");
    vec![rate, churn]
}

/// Submitted-points/sec through the distributed path: a coordinator
/// plus two local worker servers, the bench spec submitted
/// `?cluster=1`, leases fanned out over real sockets and the merged
/// stream drained to completion. Workers pre-warm on the full spec so
/// the measured iterations isolate lease/merge overhead (compare
/// against `serve_throughput`, whose single process skips the
/// fan-out).
fn measure_cluster(spec: &synapse_campaign::CampaignSpec) -> StageRate {
    let spec_json = serde_json::to_string(spec).expect("bench spec serializes");
    let mut workers = Vec::new();
    let mut worker_addrs = Vec::new();
    for _ in 0..2 {
        let server = synapse_server::Server::bind(synapse_server::ServerConfig {
            addr: "127.0.0.1:0".into(),
            ..Default::default()
        })
        .expect("bind bench worker");
        let addr = server.local_addr().expect("bench worker addr").to_string();
        let handle = server.handle().expect("bench worker handle");
        let join = std::thread::spawn(move || server.run().expect("bench worker run"));
        // Pre-warm: every lease is a cache hit no matter which worker
        // claims it.
        let client = synapse_server::Client::new(addr.clone());
        let reply = client.submit(&spec_json).expect("bench warm submit");
        let id = reply["id"].as_str().expect("job id").to_string();
        client.watch(&id, |_| true).expect("bench warm watch");
        worker_addrs.push(addr);
        workers.push((handle, join));
    }

    let coordinator = std::sync::Arc::new(synapse_cluster::Coordinator::new(
        synapse_cluster::ClusterConfig::default(),
    ));
    for addr in &worker_addrs {
        coordinator.registry().register(addr);
    }
    let server = synapse_server::Server::bind(synapse_server::ServerConfig {
        addr: "127.0.0.1:0".into(),
        ..Default::default()
    })
    .expect("bind bench coordinator")
    .with_cluster(coordinator);
    let addr = server
        .local_addr()
        .expect("bench coordinator addr")
        .to_string();
    let handle = server.handle().expect("bench coordinator handle");
    let join = std::thread::spawn(move || server.run().expect("bench coordinator run"));
    let client = synapse_server::Client::new(addr);

    let submit_and_drain = || {
        let reply = client
            .submit_distributed(&spec_json)
            .expect("bench cluster submit");
        let id = reply["id"].as_str().expect("job id").to_string();
        let summary = client.watch(&id, |_| true).expect("bench cluster watch");
        assert_eq!(summary["event"].as_str(), Some("completed"));
        summary["points"].as_u64().expect("points") as usize
    };
    submit_and_drain(); // untimed warm-up of the distributed path
    let rate = measure("cluster_throughput", submit_and_drain);

    handle.shutdown();
    join.join().expect("bench coordinator thread");
    for (handle, join) in workers {
        handle.shutdown();
        join.join().expect("bench worker thread");
    }
    rate
}

/// Render the benchmark as the `BENCH_campaign.json` document.
pub fn run() -> String {
    let (rates, watcher_bytes) = stage_rates_with_bytes();
    let stages: Vec<serde_json::Value> = rates
        .iter()
        .map(|r| {
            serde_json::json!({
                "stage": r.stage,
                "points": r.points,
                "secs": r.secs,
                "points_per_sec": r.points_per_sec(),
            })
        })
        .collect();
    let doc = serde_json::json!({
        "bench": "campaign_throughput",
        "unit": "points_per_sec",
        "stages": stages,
        // One raw vs one aggregate replay of the same completed job:
        // the aggregate stream must stay O(slices), not O(points).
        "watcher_stream_bytes": {
            "aggregate": watcher_bytes.aggregate,
            "raw": watcher_bytes.raw,
        },
    });
    serde_json::to_string_pretty(&doc).expect("bench document serializes")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_rate_math() {
        let r = StageRate {
            stage: "expansion",
            points: 500,
            secs: 0.25,
        };
        assert_eq!(r.points_per_sec(), 2000.0);
        let zero = StageRate {
            stage: "expansion",
            points: 0,
            secs: 0.0,
        };
        assert_eq!(zero.points_per_sec(), 0.0);
    }

    #[test]
    fn expansion_spec_is_wide() {
        assert!(expansion_spec().point_count() >= 10_000);
    }

    #[test]
    fn bench_document_has_all_ten_nonzero_stages() {
        let doc: serde_json::Value = serde_json::from_str(&run()).unwrap();
        let stages = doc["stages"].as_array().unwrap();
        let names: Vec<&str> = stages
            .iter()
            .map(|s| s["stage"].as_str().unwrap())
            .collect();
        assert_eq!(
            names,
            vec![
                "expansion",
                "cache_lookup",
                "simulation",
                "aggregation",
                "serve_throughput",
                "cluster_throughput",
                "serve_concurrency",
                "connection_churn",
                "watcher_aggregate",
                "trace_replay",
            ]
        );
        for s in stages {
            assert!(
                s["points_per_sec"].as_f64().unwrap() > 0.0,
                "stage {s:?} must report a nonzero rate"
            );
        }
        let rate = |name: &str| {
            stages
                .iter()
                .find(|s| s["stage"].as_str() == Some(name))
                .and_then(|s| s["points_per_sec"].as_f64())
                .unwrap()
        };
        // The CI floor: replaying a recorded trace must beat
        // re-simulating by a wide margin, or recording is pointless.
        assert!(
            rate("trace_replay") >= 50.0 * rate("simulation"),
            "trace_replay {} vs simulation {}",
            rate("trace_replay"),
            rate("simulation"),
        );
        // The aggregate-mode replay drops every per-point line, so it
        // must be materially smaller than the raw replay of the same
        // job — the O(slices) vs O(points) contract.
        let bytes = &doc["watcher_stream_bytes"];
        let aggregate = bytes["aggregate"].as_u64().unwrap();
        let raw = bytes["raw"].as_u64().unwrap();
        assert!(aggregate > 0);
        assert!(
            2 * aggregate < raw,
            "aggregate replay {aggregate}B vs raw {raw}B"
        );
    }
}
