//! Shared helpers for the experiment harness.

use synapse_model::Summary;
use synapse_sim::{MachineModel, Noise};
use synapse_workloads::{AppModel, SimRun};

/// The step counts of E.1/E.2 (Fig. 4/5/7): 1e4 … 1e7, log-spaced the
/// way the paper labels its x-axis.
pub const STEPS_E12: [u64; 7] = [
    10_000, 50_000, 100_000, 500_000, 1_000_000, 5_000_000, 10_000_000,
];

/// The step counts of E.3 (Figs 8–11).
pub const STEPS_E3: [u64; 7] = [1_000, 5_000, 10_000, 25_000, 50_000, 75_000, 100_000];

/// The sampling rates of E.1 (Fig. 4/6), in Hz.
pub const RATES: [f64; 7] = [0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0];

/// Repeated application runs with seeded noise (one summary per
/// metric extractor).
pub fn repeated_runs(
    app: &AppModel,
    machine: &MachineModel,
    steps: u64,
    repeats: usize,
    seed: u64,
) -> Vec<SimRun> {
    let mut noise = Noise::new(seed ^ steps, 0.01);
    (0..repeats)
        .map(|_| app.execute(machine, steps, &mut noise))
        .collect()
}

/// Summary over a metric of repeated runs.
pub fn summarize(runs: &[SimRun], f: impl Fn(&SimRun) -> f64) -> Summary {
    Summary::of(&runs.iter().map(f).collect::<Vec<_>>()).expect("non-empty runs")
}

/// Format a value with its 99 % CI half-width, e.g. `12.34 ±0.05`.
pub fn with_ci(s: &Summary) -> String {
    format!("{:.4e} ±{:.1e}", s.mean, s.ci99())
}

/// A right-aligned numeric cell.
pub fn cell(v: f64) -> String {
    if v.abs() >= 1e5 {
        format!("{v:>12.4e}")
    } else {
        format!("{v:>12.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synapse_sim::thinkie;

    #[test]
    fn repeated_runs_are_seeded_deterministic() {
        let app = AppModel::default();
        let m = thinkie();
        let a = repeated_runs(&app, &m, 10_000, 3, 1);
        let b = repeated_runs(&app, &m, 10_000, 3, 1);
        assert_eq!(a[0].tx.to_bits(), b[0].tx.to_bits());
        let c = repeated_runs(&app, &m, 10_000, 3, 2);
        assert_ne!(a[0].tx.to_bits(), c[0].tx.to_bits());
    }

    #[test]
    fn summarize_extracts_metric() {
        let app = AppModel::default();
        let m = thinkie();
        let runs = repeated_runs(&app, &m, 10_000, 5, 3);
        let s = summarize(&runs, |r| r.tx);
        assert!(s.mean > 0.0);
        assert_eq!(s.n, 5);
        assert!(!with_ci(&s).is_empty());
    }

    #[test]
    fn cells_format() {
        assert!(cell(1.5).contains("1.500"));
        assert!(cell(2.5e9).contains('e'));
    }
}
