//! E.3 — Emulating with different kernels (Figs 8–11).
//!
//! Gromacs is profiled on Comet and Supermic; Synapse then emulates
//! each run by directing the kernels to consume the measured cycle
//! count (memory and I/O emulation turned off, as the paper states).
//! The C (out-of-cache) kernel reproduces cycles, Tx, instruction
//! counts and instruction rates better than the ASM (in-cache) kernel
//! on every metric and both machines.

use synapse::emulator::{EmulationPlan, Emulator, KernelChoice};
use synapse_model::stats::error_pct;
use synapse_model::Summary;
use synapse_sim::{comet, supermic, MachineModel, Noise};
use synapse_workloads::AppModel;

use crate::util::{repeated_runs, summarize, STEPS_E3};

/// Statistics of one series (application or one kernel's emulation)
/// at one step count.
pub struct SeriesPoint {
    /// Used cycles (mean over repeats).
    pub cycles: Summary,
    /// Execution time Tx.
    pub tx: Summary,
    /// Retired instructions.
    pub instructions: Summary,
}

impl SeriesPoint {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        self.instructions.mean / self.cycles.mean
    }
}

/// One step count's application + emulation measurements.
pub struct E3Point {
    /// Step count.
    pub steps: u64,
    /// Application execution.
    pub app: SeriesPoint,
    /// Emulation with the C kernel.
    pub c: SeriesPoint,
    /// Emulation with the ASM kernel.
    pub asm: SeriesPoint,
}

fn emulate_point(
    machine: &MachineModel,
    directed_cycles: u64,
    kernel: KernelChoice,
    seed: u64,
) -> SeriesPoint {
    // A single-sample profile directing exactly the measured cycles;
    // memory and I/O emulation are off for E.3.
    let app = AppModel::default();
    let mut profile = app.simulate_profile(machine, 1, 1.0, &mut Noise::none());
    profile.samples.truncate(1);
    profile.samples[0].compute.cycles = directed_cycles;
    let plan = EmulationPlan {
        kernel,
        emulate_storage: false,
        emulate_memory: false,
        emulate_network: false,
        sim_startup_seconds: 0.0,
        ..Default::default()
    };
    let emulator = Emulator::new(plan);
    // Repeated emulations: "the confidence interval of the average
    // number of cycles used by emulations is three orders of magnitude
    // smaller than the corresponding average" — tiny measurement noise.
    let mut noise = Noise::new(seed, 1e-4);
    let mut cycles = Vec::new();
    let mut tx = Vec::new();
    let mut instr = Vec::new();
    for _ in 0..5 {
        let r = emulator.simulate(&profile, machine);
        cycles.push(noise.apply(r.consumed.cycles as f64));
        tx.push(noise.apply(r.tx));
        instr.push(noise.apply(r.consumed.instructions as f64));
    }
    SeriesPoint {
        cycles: Summary::of(&cycles).unwrap(),
        tx: Summary::of(&tx).unwrap(),
        instructions: Summary::of(&instr).unwrap(),
    }
}

/// Run the E.3 sweep on one machine.
pub fn sweep(machine: &MachineModel) -> Vec<E3Point> {
    let app = AppModel::default();
    STEPS_E3
        .iter()
        .map(|&steps| {
            let runs = repeated_runs(&app, machine, steps, 5, 80);
            let app_point = SeriesPoint {
                cycles: summarize(&runs, |r| r.cycles as f64),
                tx: summarize(&runs, |r| r.tx),
                instructions: summarize(&runs, |r| r.instructions as f64),
            };
            let directed = app_point.cycles.mean as u64;
            let c = emulate_point(machine, directed, KernelChoice::C, 81 ^ steps);
            let asm = emulate_point(machine, directed, KernelChoice::Asm, 82 ^ steps);
            E3Point {
                steps,
                app: app_point,
                c,
                asm,
            }
        })
        .collect()
}

fn render_metric(
    title: &str,
    machines: &[(&str, Vec<E3Point>)],
    metric: impl Fn(&SeriesPoint) -> &Summary,
) -> String {
    let mut out = format!("{title}\n");
    for (name, points) in machines {
        out.push_str(&format!(
            "\n[{name}]\n{:>9} {:>14} {:>14} {:>14} {:>9} {:>9}\n",
            "steps", "application", "C kernel", "ASM kernel", "err C %", "err ASM %"
        ));
        for p in points {
            let a = metric(&p.app).mean;
            let c = metric(&p.c).mean;
            let asm = metric(&p.asm).mean;
            out.push_str(&format!(
                "{:>9} {:>14.4e} {:>14.4e} {:>14.4e} {:>9.1} {:>9.1}\n",
                p.steps,
                a,
                c,
                asm,
                error_pct(c, a).unwrap_or(f64::NAN),
                error_pct(asm, a).unwrap_or(f64::NAN),
            ));
        }
    }
    out
}

fn both_machines() -> Vec<(&'static str, Vec<E3Point>)> {
    vec![("comet", sweep(&comet())), ("supermic", sweep(&supermic()))]
}

/// Fig. 8 — cycles used by application and emulations.
pub fn run_fig08() -> String {
    render_metric(
        "Fig 8 — Cycles used by Gromacs and its emulations (C vs ASM kernels).\n\
         Paper: err converges to ~3.5 %/14.5 % (Comet), ~4.0 %/26.5 % (Supermic).",
        &both_machines(),
        |s| &s.cycles,
    )
}

/// Fig. 9 — Tx of application and emulations.
pub fn run_fig09() -> String {
    render_metric(
        "Fig 9 — Tx of Gromacs and its emulations. Error tracks the cycle error\n\
         (compute-bound workload, consistent clock speeds).",
        &both_machines(),
        |s| &s.tx,
    )
}

/// Fig. 10 — instructions executed.
pub fn run_fig10() -> String {
    render_metric(
        "Fig 10 — Instructions executed. The C kernel's instruction count error\n\
         stays below the ASM kernel's on both machines.",
        &both_machines(),
        |s| &s.instructions,
    )
}

/// Fig. 11 — instructions per cycle.
pub fn run_fig11() -> String {
    let machines = both_machines();
    let mut out = String::from(
        "Fig 11 — Instruction rate (instructions/cycle).\n\
         Paper: Comet app ~2.17, C ~2.80, ASM ~3.30; Supermic app ~2.04, C ~2.53, ASM ~2.86.\n",
    );
    for (name, points) in &machines {
        out.push_str(&format!(
            "\n[{name}]\n{:>9} {:>12} {:>12} {:>12}\n",
            "steps", "application", "C kernel", "ASM kernel"
        ));
        for p in points {
            out.push_str(&format!(
                "{:>9} {:>12.2} {:>12.2} {:>12.2}\n",
                p.steps,
                p.app.ipc(),
                p.c.ipc(),
                p.asm.ipc()
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn converged_err(points: &[E3Point], f: impl Fn(&E3Point) -> (f64, f64)) -> (f64, f64) {
        f(points.last().unwrap())
    }

    #[test]
    fn fig08_cycle_errors_converge_to_paper_values() {
        let comet_points = sweep(&comet());
        let (c, asm) = converged_err(&comet_points, |p| {
            (
                error_pct(p.c.cycles.mean, p.app.cycles.mean).unwrap(),
                error_pct(p.asm.cycles.mean, p.app.cycles.mean).unwrap(),
            )
        });
        assert!((c - 3.5).abs() < 2.0, "comet C err {c} (paper ~3.5)");
        assert!(
            (asm - 14.5).abs() < 4.0,
            "comet ASM err {asm} (paper ~14.5)"
        );

        let sm_points = sweep(&supermic());
        let (c, asm) = converged_err(&sm_points, |p| {
            (
                error_pct(p.c.cycles.mean, p.app.cycles.mean).unwrap(),
                error_pct(p.asm.cycles.mean, p.app.cycles.mean).unwrap(),
            )
        });
        assert!((c - 4.0).abs() < 2.0, "supermic C err {c} (paper ~4.0)");
        assert!(
            (asm - 26.5).abs() < 5.0,
            "supermic ASM err {asm} (paper ~26.5)"
        );
    }

    #[test]
    fn c_kernel_beats_asm_on_every_metric_and_machine() {
        // The smallest configuration is excluded for Tx: there the
        // application's (un-emulated) startup I/O shifts its Tx enough
        // that the ASM kernel's overshoot can accidentally compensate
        // — compare the paper's own noisy first data points.
        for machine in [comet(), supermic()] {
            for p in sweep(&machine).into_iter().skip(1) {
                let err = |s: &SeriesPoint, a: &SeriesPoint, f: fn(&SeriesPoint) -> f64| {
                    error_pct(f(s), f(a)).unwrap()
                };
                let cyc = |s: &SeriesPoint| s.cycles.mean;
                let tx = |s: &SeriesPoint| s.tx.mean;
                let ins = |s: &SeriesPoint| s.instructions.mean;
                assert!(
                    err(&p.c, &p.app, cyc) <= err(&p.asm, &p.app, cyc) + 1e-6,
                    "{} steps {}: cycles",
                    machine.name,
                    p.steps
                );
                assert!(err(&p.c, &p.app, tx) <= err(&p.asm, &p.app, tx) + 1e-6);
                assert!(err(&p.c, &p.app, ins) <= err(&p.asm, &p.app, ins) + 1e-6);
            }
        }
    }

    #[test]
    fn error_decreases_with_problem_size() {
        // Quantization dominates short runs; the error converges from
        // above (the shape of Figs 8–10).
        let points = sweep(&comet());
        let first = error_pct(points[0].asm.cycles.mean, points[0].app.cycles.mean).unwrap();
        let last = error_pct(
            points.last().unwrap().asm.cycles.mean,
            points.last().unwrap().app.cycles.mean,
        )
        .unwrap();
        assert!(first >= last - 1e-6, "err shrinks: {first} -> {last}");
    }

    #[test]
    fn fig11_ipc_ordering_matches_paper() {
        for (machine, app_ipc, c_ipc, asm_ipc) in
            [(comet(), 2.17, 2.80, 3.30), (supermic(), 2.04, 2.53, 2.86)]
        {
            let points = sweep(&machine);
            let p = points.last().unwrap();
            assert!((p.app.ipc() - app_ipc).abs() < 0.15, "{}", machine.name);
            assert!((p.c.ipc() - c_ipc).abs() < 0.15, "{}", machine.name);
            assert!((p.asm.ipc() - asm_ipc).abs() < 0.15, "{}", machine.name);
            // Ordering: app < C < ASM.
            assert!(p.app.ipc() < p.c.ipc() && p.c.ipc() < p.asm.ipc());
        }
    }

    #[test]
    fn confidence_intervals_are_tight() {
        // Paper: CI width no more than 6.6 % of the value; emulation
        // cycle CI three orders of magnitude below the mean.
        for p in sweep(&comet()) {
            assert!(p.app.tx.ci99_rel().unwrap() < 0.066, "steps {}", p.steps);
            assert!(
                p.c.cycles.ci99() < p.c.cycles.mean * 1e-2,
                "emulation cycles are highly repeatable"
            );
        }
    }

    #[test]
    fn outputs_render() {
        assert!(run_fig08().contains("comet"));
        assert!(run_fig09().contains("supermic"));
        assert!(run_fig10().contains("err"));
        assert!(run_fig11().contains("ASM kernel"));
    }
}
