#![forbid(unsafe_code)]
//! Experiment harness regenerating every table and figure of the
//! paper's evaluation (§5).
//!
//! Each module implements one experiment and exposes `run() ->
//! String`, printing the same rows/series the paper plots; the
//! `src/bin/*` binaries are thin wrappers, and `run_all` regenerates
//! everything for EXPERIMENTS.md. All experiments run on the machine
//! models (substitution documented in DESIGN.md), are deterministic
//! (seeded noise) and complete in seconds.
//!
//! | module    | paper artifact |
//! |-----------|----------------|
//! | `table1`  | Table 1 — metric usage matrix |
//! | `sampling`| Figs 2–3 — sampling effects & sample portability |
//! | `e1`      | Fig 4 — profiling overhead; Fig 6 — consistency |
//! | `e2`      | Fig 5 — emulation on the profiling host; Fig 7 — portability |
//! | `e3`      | Figs 8–11 — kernel fidelity (cycles, Tx, instructions, IPC) |
//! | `e4`      | Fig 12 — parallel emulation; Figs 13–14 — Gromacs scaling |
//! | `e5`      | Fig 15 — I/O granularity across filesystems |

pub mod campaign_bench;
pub mod e1;
pub mod e2;
pub mod e3;
pub mod e4;
pub mod e5;
pub mod sampling;
pub mod table1;
pub mod util;

/// An experiment runner: renders one table/figure as text.
pub type ExperimentFn = fn() -> String;

/// All experiments, in paper order: (name, runner).
pub fn all_experiments() -> Vec<(&'static str, ExperimentFn)> {
    vec![
        ("table1_metrics", table1::run as ExperimentFn),
        ("fig02_sampling_effects", sampling::run_fig02),
        ("fig03_sample_portability", sampling::run_fig03),
        ("fig04_profiling_overhead", e1::run_fig04),
        ("fig05_emulation_same_resource", e2::run_fig05),
        ("fig06_profiling_consistency", e1::run_fig06),
        ("fig07_emulation_portability", e2::run_fig07),
        ("fig08_kernel_cycles", e3::run_fig08),
        ("fig09_kernel_tx", e3::run_fig09),
        ("fig10_kernel_instructions", e3::run_fig10),
        ("fig11_kernel_ipc", e3::run_fig11),
        ("fig12_parallel_emulation", e4::run_fig12),
        ("fig13_gromacs_openmp", e4::run_fig13),
        ("fig14_gromacs_mpi", e4::run_fig14),
        ("fig15_io_granularity", e5::run_fig15),
    ]
}
