//! E.5 — Emulating variable I/O granularity (Fig. 15).
//!
//! A static, homogeneous set of I/O operations is emulated toward
//! different filesystems with different block sizes. Expected shapes:
//! writes ~an order of magnitude slower than reads; small blocks much
//! slower than large ones; Lustre performs about the same on Titan and
//! Supermic while the local filesystems differ significantly (Titan's
//! local FS is much faster).

use synapse_sim::{comet, supermic, titan, FsKind, IoOp};

/// The swept block sizes (bytes), 4 KiB … 16 MiB.
pub const BLOCKS: [u64; 6] = [4 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20];

/// Total bytes moved per configuration.
pub const TOTAL_BYTES: u64 = 256 << 20;

/// One measured configuration.
pub struct IoPoint {
    /// Machine name.
    pub machine: String,
    /// Filesystem.
    pub fs: FsKind,
    /// Operation.
    pub op: IoOp,
    /// Block size in bytes.
    pub block: u64,
    /// Modelled time in seconds.
    pub seconds: f64,
}

/// Run the full sweep.
pub fn sweep() -> Vec<IoPoint> {
    let mut points = Vec::new();
    for machine in [titan(), supermic(), comet()] {
        for fs in [FsKind::Local, FsKind::Lustre, FsKind::Nfs] {
            if machine.fs(fs).is_none() {
                continue;
            }
            for op in [IoOp::Read, IoOp::Write] {
                for block in BLOCKS {
                    points.push(IoPoint {
                        machine: machine.name.clone(),
                        fs,
                        op,
                        block,
                        seconds: machine.io_time(TOTAL_BYTES, block, op, fs),
                    });
                }
            }
        }
    }
    points
}

fn find(points: &[IoPoint], machine: &str, fs: FsKind, op: IoOp, block: u64) -> f64 {
    points
        .iter()
        .find(|p| p.machine == machine && p.fs == fs && p.op == op && p.block == block)
        .map(|p| p.seconds)
        .unwrap_or(f64::NAN)
}

/// Fig. 15 — the I/O granularity table.
pub fn run_fig15() -> String {
    let points = sweep();
    let mut out = format!(
        "Fig 15 — I/O emulation: {} MiB moved per configuration, time in seconds.\n\
         Writes are ~an order of magnitude slower than reads; small blocks pay\n\
         per-operation latency; Lustre is similar on Titan and Supermic while\n\
         the local filesystems differ significantly.\n\n",
        TOTAL_BYTES >> 20
    );
    out.push_str(&format!("{:<10} {:<8} {:<6}", "machine", "fs", "op"));
    for b in BLOCKS {
        out.push_str(&format!(
            "{:>10}",
            if b >= 1 << 20 {
                format!("{}MiB", b >> 20)
            } else {
                format!("{}KiB", b >> 10)
            }
        ));
    }
    out.push('\n');
    let mut seen: Vec<(String, FsKind, IoOp)> = Vec::new();
    for p in &points {
        let key = (p.machine.clone(), p.fs, p.op);
        if seen.contains(&key) {
            continue;
        }
        seen.push(key);
        out.push_str(&format!(
            "{:<10} {:<8} {:<6}",
            p.machine,
            p.fs.name(),
            if p.op == IoOp::Read { "read" } else { "write" }
        ));
        for b in BLOCKS {
            out.push_str(&format!(
                "{:>10.2}",
                find(&points, &p.machine, p.fs, p.op, b)
            ));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_slower_than_reads_everywhere() {
        let points = sweep();
        for p in points.iter().filter(|p| p.op == IoOp::Write) {
            let read = find(&points, &p.machine, p.fs, IoOp::Read, p.block);
            assert!(
                p.seconds > read,
                "{} {} block {}: write {} vs read {}",
                p.machine,
                p.fs.name(),
                p.block,
                p.seconds,
                read
            );
        }
    }

    #[test]
    fn writes_an_order_of_magnitude_slower_at_small_blocks() {
        let points = sweep();
        for machine in ["titan", "supermic"] {
            let w = find(&points, machine, FsKind::Lustre, IoOp::Write, 4 << 10);
            let r = find(&points, machine, FsKind::Lustre, IoOp::Read, 4 << 10);
            assert!(w > 5.0 * r, "{machine}: {w} vs {r}");
        }
    }

    #[test]
    fn small_blocks_much_slower_than_large() {
        let points = sweep();
        for p in sweep().iter().filter(|p| p.block == 4 << 10) {
            let large = find(&points, &p.machine, p.fs, p.op, 16 << 20);
            assert!(
                p.seconds > 2.0 * large,
                "{} {} {:?}: small {} vs large {}",
                p.machine,
                p.fs.name(),
                p.op,
                p.seconds,
                large
            );
        }
    }

    #[test]
    fn lustre_similar_across_machines_local_not() {
        let points = sweep();
        for op in [IoOp::Read, IoOp::Write] {
            for block in BLOCKS {
                let t = find(&points, "titan", FsKind::Lustre, op, block);
                let s = find(&points, "supermic", FsKind::Lustre, op, block);
                assert!((t / s - 1.0).abs() < 0.05, "lustre similar");
            }
        }
        let t_local = find(&points, "titan", FsKind::Local, IoOp::Write, 1 << 20);
        let s_local = find(&points, "supermic", FsKind::Local, IoOp::Write, 1 << 20);
        assert!(t_local < s_local / 2.0, "titan local much faster");
    }

    #[test]
    fn monotone_in_block_size() {
        let points = sweep();
        for machine in ["titan", "supermic", "comet"] {
            for fs in [FsKind::Local, FsKind::Lustre, FsKind::Nfs] {
                for op in [IoOp::Read, IoOp::Write] {
                    let series: Vec<f64> = BLOCKS
                        .iter()
                        .map(|&b| find(&points, machine, fs, op, b))
                        .filter(|v| v.is_finite())
                        .collect();
                    for w in series.windows(2) {
                        assert!(w[1] <= w[0] + 1e-9, "{machine} {}", fs.name());
                    }
                }
            }
        }
    }

    #[test]
    fn output_renders_nfs_row_for_comet() {
        let out = run_fig15();
        assert!(out.contains("comet"));
        assert!(out.contains("nfs"));
        assert!(out.contains("lustre"));
    }
}
