//! Figures 2–3: sampling effects and sample portability.
//!
//! Fig. 2 illustrates that emulation replays each sample's resource
//! types *concurrently*, removing serialization the application had —
//! an effect that shrinks at higher sampling rates. Fig. 3 shows that
//! on a machine with different relative resource speeds the dominating
//! resource of a sample may flip, while the overall operation order is
//! preserved.
//!
//! We script the paper's example timeline (serial and concurrent CPU /
//! disk phases), profile it at two rates, and emulate: once at the
//! fine rate, once at the coarse rate, and once with sample ordering
//! disabled (the limit case of infinitely coarse sampling).

use synapse::emulator::{EmulationPlan, Emulator};
use synapse_model::{Profile, ProfileKey, Sample, Tags};
use synapse_sim::{thinkie, FsKind, IoOp, KernelClass, MachineModel};

/// One step of the scripted application timeline.
#[derive(Debug, Clone, Copy)]
enum Phase {
    /// `secs` of pure computation.
    Cpu(f64),
    /// `secs` of pure disk writing.
    Disk(f64),
    /// Computation and disk activity overlapping for `secs`.
    Both(f64),
}

/// The Fig. 2 example timeline: a mix of serial and concurrent CPU
/// (green) and disk (blue) operations, ~8 s total on the profiling
/// machine.
const TIMELINE: [Phase; 6] = [
    Phase::Cpu(2.0),
    Phase::Disk(1.0),
    Phase::Cpu(0.8),
    Phase::Both(1.2),
    Phase::Disk(1.5),
    Phase::Cpu(1.5),
];

/// Serialized application runtime of the timeline (phases run in
/// order; a `Both` phase counts once — its two activities overlap).
fn app_runtime() -> f64 {
    TIMELINE
        .iter()
        .map(|p| match p {
            Phase::Cpu(s) | Phase::Disk(s) | Phase::Both(s) => *s,
        })
        .sum()
}

/// Profile the scripted timeline at `rate_hz` on a machine: walk the
/// timeline, dropping each phase's resource consumption into the
/// sample bins it spans (CPU seconds become cycles at the machine's
/// application efficiency; disk seconds become bytes at the default
/// filesystem's streaming write rate).
fn profile_timeline(machine: &MachineModel, rate_hz: f64) -> Profile {
    let dt = 1.0 / rate_hz;
    let runtime = app_runtime();
    let nsamples = (runtime / dt).ceil() as usize;
    let app = machine.kernel(KernelClass::Application);
    let cycles_per_sec = machine.cpu.effective_freq_hz * app.efficiency;
    let fsm = machine.default_fs_model();
    let bytes_per_sec = fsm.write_bandwidth / 2.0; // mid-size blocks

    let mut samples = vec![Sample::default(); nsamples];
    for (i, s) in samples.iter_mut().enumerate() {
        s.t = i as f64 * dt;
        s.dt = dt;
    }
    let mut t = 0.0f64;
    for phase in TIMELINE {
        let (secs, cpu, disk) = match phase {
            Phase::Cpu(s) => (s, true, false),
            Phase::Disk(s) => (s, false, true),
            Phase::Both(s) => (s, true, true),
        };
        // Spread the phase over the bins it covers.
        let mut remaining = secs;
        let mut cursor = t;
        while remaining > 1e-12 {
            let bin = ((cursor / dt).floor() as usize).min(nsamples - 1);
            let bin_end = (bin + 1) as f64 * dt;
            let span = (bin_end - cursor).min(remaining);
            let s = &mut samples[bin];
            if cpu {
                s.compute.cycles += (span * cycles_per_sec) as u64;
                s.compute.instructions += (span * cycles_per_sec * app.ipc) as u64;
            }
            if disk {
                let bytes = (span * bytes_per_sec) as u64;
                s.storage.bytes_written += bytes;
                s.storage.write_ops += bytes.div_ceil(1 << 20);
            }
            cursor += span;
            remaining -= span;
        }
        t += secs;
    }

    let mut profile = Profile::new(
        ProfileKey::new("fig2-timeline", Tags::new()),
        machine.system_info(),
        rate_hz,
    );
    profile.runtime = runtime;
    for s in samples {
        profile.push(s).expect("ordered");
    }
    profile
}

fn emulate(profile: &Profile, machine: &MachineModel, preserve_order: bool) -> f64 {
    let plan = EmulationPlan {
        preserve_sample_order: preserve_order,
        sim_startup_seconds: 0.0,
        ..Default::default()
    };
    Emulator::new(plan).simulate(profile, machine).tx
}

/// Fig. 2: emulation Tx vs sampling rate (concurrency flattening).
pub fn run_fig02() -> String {
    let machine = thinkie();
    let mut out = String::from(
        "Fig 2 — Sampling effects: per-sample concurrent replay removes\n\
         serialization the application had; higher sampling rates reduce the effect.\n\n",
    );
    out.push_str(&format!(
        "application (serialized) Tx: {:.2} s\n\n",
        app_runtime()
    ));
    out.push_str(&format!(
        "{:>10} {:>10} {:>14} {:>12}\n",
        "rate (Hz)", "samples", "emulated Tx", "vs app (%)"
    ));
    for rate in [0.5, 1.0, 2.0, 4.0, 8.0] {
        let profile = profile_timeline(&machine, rate);
        let tx = emulate(&profile, &machine, true);
        let diff = (tx - app_runtime()) / app_runtime() * 100.0;
        out.push_str(&format!(
            "{:>10.1} {:>10} {:>14.2} {:>+12.1}\n",
            rate,
            profile.len(),
            tx,
            diff
        ));
    }
    // The ordering ablation: one merged sample = full concurrency.
    let profile = profile_timeline(&machine, 8.0);
    let tx_unordered = emulate(&profile, &machine, false);
    out.push_str(&format!(
        "{:>10} {:>10} {:>14.2} {:>+12.1}   (ordering disabled — ablation)\n",
        "-",
        1,
        tx_unordered,
        (tx_unordered - app_runtime()) / app_runtime() * 100.0
    ));
    out
}

/// Fig. 3: the same profile on a machine with faster CPU and slower
/// disk — dominant resources flip per sample, order is preserved.
pub fn run_fig03() -> String {
    let profiling_host = thinkie();
    // "CPU is 25% faster, disk is 50% slower."
    let mut target = thinkie();
    target.name = "thinkie-shifted".into();
    target.cpu.effective_freq_hz *= 1.25;
    for fs in &mut target.filesystems {
        fs.write_bandwidth *= 0.5;
        fs.read_bandwidth *= 0.5;
        fs.write_latency *= 2.0;
        fs.read_latency *= 2.0;
    }

    let profile = profile_timeline(&profiling_host, 1.0);
    let mut out = String::from(
        "Fig 3 — Sample portability: dominant resource per sample on the\n\
         profiling machine vs a target with CPU +25 %, disk -50 %.\n\n",
    );
    out.push_str(&format!(
        "{:>7} {:>18} {:>18} {:>10}\n",
        "sample", "profiling host", "target", "flipped"
    ));
    let mut flips = 0;
    for (i, s) in profile.samples.iter().enumerate() {
        let dominant = |m: &MachineModel| -> &'static str {
            let tc = m.compute_time(s.compute.cycles, KernelClass::AsmMatmul);
            let td = m.io_time(s.storage.bytes_written, 1 << 20, IoOp::Write, FsKind::Local);
            if tc >= td {
                "Compute"
            } else {
                "Storage"
            }
        };
        let a = dominant(&profiling_host);
        let b = dominant(&target);
        let flipped = a != b;
        flips += flipped as u32;
        out.push_str(&format!(
            "{:>7} {:>18} {:>18} {:>10}\n",
            i + 1,
            a,
            b,
            if flipped { "YES" } else { "" }
        ));
    }
    let tx_a = emulate(&profile, &profiling_host, true);
    let tx_b = emulate(&profile, &target, true);
    out.push_str(&format!(
        "\n{flips} samples flip dominance; sample order is preserved on both.\n\
         emulated Tx: profiling host {tx_a:.2} s, target {tx_b:.2} s\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeline_profile_conserves_resources_across_rates() {
        let m = thinkie();
        let fine = profile_timeline(&m, 8.0);
        let coarse = profile_timeline(&m, 0.5);
        let ft = fine.totals();
        let ct = coarse.totals();
        // Binning must not change totals (within integer rounding of
        // per-bin casts: allow 0.1 %).
        let close = |a: u64, b: u64| (a as f64 - b as f64).abs() / (a as f64).max(1.0) < 1e-3;
        assert!(
            close(ft.cycles, ct.cycles),
            "{} vs {}",
            ft.cycles,
            ct.cycles
        );
        assert!(close(ft.bytes_written, ct.bytes_written));
    }

    #[test]
    fn concurrency_flattening_speeds_up_emulation() {
        // Coarser sampling -> more artificial concurrency -> faster
        // emulation; ordering disabled is the fastest.
        let m = thinkie();
        let fine = emulate(&profile_timeline(&m, 8.0), &m, true);
        let coarse = emulate(&profile_timeline(&m, 0.5), &m, true);
        let unordered = emulate(&profile_timeline(&m, 8.0), &m, false);
        assert!(coarse <= fine + 1e-9, "coarse {coarse} vs fine {fine}");
        assert!(unordered <= coarse + 1e-9);
        // And emulation can never beat the concurrent lower bound:
        // the all-merged Tx is at least the largest single resource.
        assert!(unordered > 0.0);
    }

    #[test]
    fn fine_rate_emulation_close_to_app() {
        let m = thinkie();
        let fine = emulate(&profile_timeline(&m, 8.0), &m, true);
        let app = app_runtime();
        // Within 25 % of the serialized application (the only true
        // concurrency in the timeline is the `Both` phase).
        assert!((fine - app).abs() / app < 0.25, "fine {fine} vs app {app}");
    }

    #[test]
    fn fig03_reports_flips() {
        let out = run_fig03();
        assert!(out.contains("YES"), "at least one dominance flip:\n{out}");
        assert!(out.contains("order is preserved"));
    }

    #[test]
    fn fig02_output_has_all_rates() {
        let out = run_fig02();
        for rate in ["0.5", "1.0", "2.0", "4.0", "8.0"] {
            assert!(out.contains(rate));
        }
        assert!(out.contains("ablation"));
    }
}
