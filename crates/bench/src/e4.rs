//! E.4 — Emulating parallel execution (Figs 12–14).
//!
//! A profile obtained from a *single-threaded* application run is
//! emulated with thread (OpenMP) or process (OpenMPI) parallelism —
//! a dimension the profiled run never had (requirement E.3,
//! malleability). Scaling shows good returns at small core counts and
//! diminishing returns toward the full node; OpenMP wins on Titan,
//! OpenMPI wins on Supermic. Figs 13–14 show the *actual* application
//! scaling on Titan for comparison.

use synapse::emulator::{EmulationPlan, Emulator};
use synapse_model::Summary;
use synapse_sim::{supermic, titan, MachineModel, Noise, ParallelMode};
use synapse_workloads::AppModel;

/// Steps of the profiled single-threaded Gromacs run.
const STEPS: u64 = 2_000_000;

fn core_counts(machine: &MachineModel) -> Vec<u32> {
    let mut counts = vec![1u32, 2, 4, 8, 16];
    if machine.cpu.ncores > 16 {
        counts.push(machine.cpu.ncores);
    }
    counts
}

/// Emulated Tx for a worker count and mode (mean ±CI over repeats).
fn emulated_tx(
    machine: &MachineModel,
    workers: u32,
    mode: ParallelMode,
    profile: &synapse_model::Profile,
    seed: u64,
) -> Summary {
    let plan = EmulationPlan {
        threads: workers,
        mode,
        emulate_storage: false,
        emulate_memory: false,
        emulate_network: false,
        sim_startup_seconds: 1.0,
        ..Default::default()
    };
    let emulator = Emulator::new(plan);
    let mut noise = Noise::new(seed ^ workers as u64, 0.015);
    let txs: Vec<f64> = (0..5)
        .map(|_| noise.apply(emulator.simulate(profile, machine).tx))
        .collect();
    Summary::of(&txs).unwrap()
}

/// Fig. 12 — emulated OpenMP vs OpenMPI scaling on Titan and Supermic.
pub fn run_fig12() -> String {
    let app = AppModel::default();
    let mut out = String::from(
        "Fig 12 — Application concurrency: thread (OpenMP) and process (OpenMPI)\n\
         parallelism applied to a single-threaded profile. Good scaling at small\n\
         core counts, diminishing returns near the full node; OpenMP wins on\n\
         Titan, OpenMPI on Supermic.\n",
    );
    for machine in [titan(), supermic()] {
        let profile = app.simulate_profile(&machine, STEPS, 1.0, &mut Noise::none());
        out.push_str(&format!(
            "\n[{} — {} cores]\n{:>7} {:>16} {:>16}\n",
            machine.name, machine.cpu.ncores, "cores", "OpenMP Tx (s)", "OpenMPI Tx (s)"
        ));
        for workers in core_counts(&machine) {
            let omp = emulated_tx(&machine, workers, ParallelMode::OpenMp, &profile, 120);
            let mpi = emulated_tx(&machine, workers, ParallelMode::Mpi, &profile, 121);
            out.push_str(&format!(
                "{:>7} {:>10.2} ±{:4.2} {:>10.2} ±{:4.2}\n",
                workers,
                omp.mean,
                omp.ci99(),
                mpi.mean,
                mpi.ci99()
            ));
        }
    }
    out
}

/// Actual application scaling on Titan for one mode (Figs 13–14).
fn gromacs_scaling(mode: ParallelMode, seed: u64) -> String {
    let app = AppModel::default();
    let machine = titan();
    let mut noise = Noise::new(seed, 0.02);
    let mut out = format!("{:>7} {:>14} {:>10}\n", "cores", "Tx (s)", "speedup");
    let base = app
        .execute_parallel(&machine, STEPS, 1, mode, &mut Noise::none())
        .tx;
    for workers in core_counts(&machine) {
        let txs: Vec<f64> = (0..5)
            .map(|_| {
                app.execute_parallel(&machine, STEPS, workers, mode, &mut noise)
                    .tx
            })
            .collect();
        let s = Summary::of(&txs).unwrap();
        out.push_str(&format!(
            "{:>7} {:>8.2} ±{:4.2} {:>10.2}\n",
            workers,
            s.mean,
            s.ci99(),
            base / s.mean
        ));
    }
    out
}

/// Fig. 13 — actual Gromacs scaling on Titan with OpenMP.
pub fn run_fig13() -> String {
    format!(
        "Fig 13 — Gromacs scaling on Titan with OpenMP (application execution).\n\n{}",
        gromacs_scaling(ParallelMode::OpenMp, 130)
    )
}

/// Fig. 14 — actual Gromacs scaling on Titan with OpenMPI.
pub fn run_fig14() -> String {
    format!(
        "Fig 14 — Gromacs scaling on Titan with OpenMPI (application execution).\n\n{}",
        gromacs_scaling(ParallelMode::Mpi, 140)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tx(machine: &MachineModel, workers: u32, mode: ParallelMode) -> f64 {
        let app = AppModel::default();
        let profile = app.simulate_profile(machine, STEPS, 1.0, &mut Noise::none());
        let plan = EmulationPlan {
            threads: workers,
            mode,
            emulate_storage: false,
            emulate_memory: false,
            emulate_network: false,
            sim_startup_seconds: 1.0,
            ..Default::default()
        };
        Emulator::new(plan).simulate(&profile, machine).tx
    }

    #[test]
    fn scaling_improves_with_diminishing_returns() {
        for machine in [titan(), supermic()] {
            for mode in [ParallelMode::OpenMp, ParallelMode::Mpi] {
                let t1 = tx(&machine, 1, mode);
                let t4 = tx(&machine, 4, mode);
                let tn = tx(&machine, machine.cpu.ncores, mode);
                assert!(t4 < t1, "{} {:?}", machine.name, mode);
                assert!(tn < t4, "{} {:?}", machine.name, mode);
                let speedup = t1 / tn;
                assert!(
                    speedup < machine.cpu.ncores as f64,
                    "{} {:?}: sublinear ({speedup:.1})",
                    machine.name,
                    mode
                );
            }
        }
    }

    #[test]
    fn openmp_wins_on_titan_mpi_wins_on_supermic() {
        let t = titan();
        assert!(
            tx(&t, 16, ParallelMode::OpenMp) < tx(&t, 16, ParallelMode::Mpi),
            "OpenMP outperforms OpenMPI on Titan"
        );
        let s = supermic();
        assert!(
            tx(&s, 20, ParallelMode::Mpi) < tx(&s, 20, ParallelMode::OpenMp),
            "OpenMPI outperforms OpenMP on Supermic"
        );
    }

    #[test]
    fn supermic_faster_than_titan() {
        // E.4: "Supermic executes the tasks faster than Titan".
        assert!(tx(&supermic(), 1, ParallelMode::OpenMp) < tx(&titan(), 1, ParallelMode::OpenMp));
    }

    #[test]
    fn emulated_scaling_resembles_application_scaling() {
        // Figs 12 vs 13: both show monotone improvement with
        // diminishing returns on Titan/OpenMP.
        let app = AppModel::default();
        let machine = titan();
        let mut last_app = f64::INFINITY;
        let mut last_emu = f64::INFINITY;
        for workers in [1u32, 2, 4, 8, 16] {
            let a = app
                .execute_parallel(
                    &machine,
                    STEPS,
                    workers,
                    ParallelMode::OpenMp,
                    &mut Noise::none(),
                )
                .tx;
            let e = tx(&machine, workers, ParallelMode::OpenMp);
            assert!(a <= last_app + 1e-9);
            assert!(e <= last_emu + 1e-9);
            last_app = a;
            last_emu = e;
        }
    }

    #[test]
    fn outputs_render() {
        let f12 = run_fig12();
        assert!(f12.contains("titan"));
        assert!(f12.contains("supermic"));
        assert!(run_fig13().contains("OpenMP"));
        assert!(run_fig14().contains("OpenMPI"));
    }
}
