//! Regenerates the paper's Fig. 2.
fn main() {
    print!("{}", bench::sampling::run_fig02());
}
