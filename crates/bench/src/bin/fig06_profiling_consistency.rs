//! Regenerates the paper's Fig. 6.
fn main() {
    print!("{}", bench::e1::run_fig06());
}
