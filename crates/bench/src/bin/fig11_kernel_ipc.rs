//! Regenerates the paper's Fig. 11.
fn main() {
    print!("{}", bench::e3::run_fig11());
}
