//! Regenerates the paper's Fig. 7.
fn main() {
    print!("{}", bench::e2::run_fig07());
}
