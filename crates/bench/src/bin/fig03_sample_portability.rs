//! Regenerates the paper's Fig. 3.
fn main() {
    print!("{}", bench::sampling::run_fig03());
}
