//! Campaign throughput benchmark: points/sec for the pipeline stages
//! (expansion, cache lookup, simulation, aggregation, serve, cluster).
//! Writes `BENCH_campaign.json` (override with `--out PATH`) and
//! prints the document to stdout.

fn main() {
    let mut out = String::from("BENCH_campaign.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => {
                out = args.next().unwrap_or_else(|| {
                    eprintln!("error: missing value after --out");
                    std::process::exit(2);
                })
            }
            other => {
                eprintln!(
                    "error: unknown argument {other} (usage: campaign_throughput [--out PATH])"
                );
                std::process::exit(2);
            }
        }
    }
    let json = bench::campaign_bench::run();
    std::fs::write(&out, &json).unwrap_or_else(|e| {
        eprintln!("error: cannot write {out}: {e}");
        std::process::exit(1);
    });
    println!("{json}");
    eprintln!("bench document written to {out}");
}
