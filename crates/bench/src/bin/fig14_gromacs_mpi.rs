//! Regenerates the paper's Fig. 14.
fn main() {
    print!("{}", bench::e4::run_fig14());
}
