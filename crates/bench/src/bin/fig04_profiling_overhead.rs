//! Regenerates the paper's Fig. 4.
fn main() {
    print!("{}", bench::e1::run_fig04());
}
