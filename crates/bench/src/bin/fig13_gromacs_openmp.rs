//! Regenerates the paper's Fig. 13.
fn main() {
    print!("{}", bench::e4::run_fig13());
}
