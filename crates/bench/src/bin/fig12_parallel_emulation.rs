//! Regenerates the paper's Fig. 12.
fn main() {
    print!("{}", bench::e4::run_fig12());
}
