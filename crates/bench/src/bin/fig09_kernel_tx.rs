//! Regenerates the paper's Fig. 9.
fn main() {
    print!("{}", bench::e3::run_fig09());
}
