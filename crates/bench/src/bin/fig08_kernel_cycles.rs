//! Regenerates the paper's Fig. 8.
fn main() {
    print!("{}", bench::e3::run_fig08());
}
