//! Regenerates the paper's Fig. 15.
fn main() {
    print!("{}", bench::e5::run_fig15());
}
