//! Regenerates the paper's Table 1.
fn main() {
    print!("{}", bench::table1::run());
}
