//! Regenerates the paper's Fig. 5.
fn main() {
    print!("{}", bench::e2::run_fig05());
}
