//! Regenerates the paper's Fig. 10.
fn main() {
    print!("{}", bench::e3::run_fig10());
}
