//! Regenerates every table and figure of the paper in sequence
//! (the data source for EXPERIMENTS.md).
fn main() {
    for (name, runner) in bench::all_experiments() {
        println!("================================================================");
        println!("== {name}");
        println!("================================================================");
        println!("{}", runner());
    }
}
