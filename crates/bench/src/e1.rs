//! E.1 — Profiling overheads and consistency (Figs 4 and 6).

use std::sync::Arc;

use synapse_model::Summary;
use synapse_sim::{thinkie, Noise};
use synapse_store::{DbProfileStore, DocumentDb, ProfileStore};
use synapse_workloads::AppModel;

use crate::util::{repeated_runs, summarize, RATES, STEPS_E12};

/// Fractional CPU cost of profiling at 10 Hz observed on the real
/// host (the paper measures "negligible"; our watcher-loop bench
/// agrees — see `benches/sampling.rs`). Scaled linearly with rate.
const OVERHEAD_AT_10HZ: f64 = 0.002;

/// Fig. 4 — Profiling overhead: native vs profiled Tx across problem
/// sizes and sampling rates.
pub fn run_fig04() -> String {
    let app = AppModel::default();
    let machine = thinkie();
    let mut out = String::from(
        "Fig 4 — Profiling vs Execution on thinkie: Tx (s) per step count;\n\
         profiling overhead is negligible at every sampling rate.\n\n",
    );
    out.push_str(&format!("{:>10}", "steps"));
    out.push_str(&format!("{:>12}", "execution"));
    for rate in RATES {
        out.push_str(&format!("{:>12}", format!("{rate:.1} Hz")));
    }
    out.push('\n');
    for steps in STEPS_E12 {
        let native = summarize(&repeated_runs(&app, &machine, steps, 5, 40), |r| r.tx);
        out.push_str(&format!("{steps:>10}{:>12.2}", native.mean));
        for rate in RATES {
            // Profiled execution: the application plus the watcher
            // loops' (tiny) share of one other core.
            let overhead = OVERHEAD_AT_10HZ * (rate / 10.0);
            let mut noise = Noise::new(41 ^ steps ^ rate.to_bits(), 0.01);
            let profiled = noise.apply(native.mean * (1.0 + overhead));
            out.push_str(&format!("{profiled:>12.2}"));
        }
        out.push('\n');
    }

    // The paper's footnote: "The largest configuration misses one
    // data sample due to limitations in the database backend."
    // Reproduce with the document store's size cap.
    let profile = app.simulate_profile(&machine, STEPS_E12[6], 10.0, &mut Noise::none());
    // The Python implementation stores far more verbose documents, so
    // its 16 MB cap binds at ~250 k samples; our compact JSON needs a
    // proportionally smaller cap to exhibit the same truncation.
    let db = Arc::new(DocumentDb::with_limit(1 << 20));
    let store = DbProfileStore::new(db);
    let report = store.save(&profile).expect("store profile");
    out.push_str(&format!(
        "\nDB backend note: profile of {} samples stored with a capped document size\n\
         -> {} samples kept, {} dropped (the paper's 'missing data sample' effect).\n",
        profile.len(),
        report.stored_samples,
        report.dropped_samples
    ));
    out
}

/// Fig. 6 — Profiling consistency: (top) total CPU operations are
/// independent of the sampling rate; (bottom) resident memory is
/// underestimated when only one sample fits in the runtime.
pub fn run_fig06() -> String {
    let app = AppModel::default();
    let machine = thinkie();
    let mut out = String::from(
        "Fig 6 (top) — CPU operations over sampling frequency: totals are\n\
         rate-independent (mean ±CI99 over 5 repeated profilings).\n\n",
    );
    out.push_str(&format!("{:>10}", "steps"));
    for rate in RATES {
        out.push_str(&format!("{:>22}", format!("{rate:.1} Hz")));
    }
    out.push('\n');
    for steps in STEPS_E12 {
        out.push_str(&format!("{steps:>10}"));
        for rate in RATES {
            let mut noise = Noise::new(60 ^ steps, 0.01);
            let cycles: Vec<f64> = (0..5)
                .map(|_| {
                    app.simulate_profile(&machine, steps, rate, &mut noise)
                        .totals()
                        .cycles as f64
                })
                .collect();
            let s = Summary::of(&cycles).unwrap();
            out.push_str(&format!(
                "{:>22}",
                format!("{:.3e} ±{:.0e}", s.mean, s.ci99())
            ));
        }
        out.push('\n');
    }

    out.push_str(
        "\nFig 6 (bottom) — Profiled resident memory (bytes): slow rates that fit\n\
         only one sample into the runtime catch the pre-ramp RSS and underestimate.\n\n",
    );
    out.push_str(&format!("{:>10}", "steps"));
    for rate in RATES {
        out.push_str(&format!("{:>12}", format!("{rate:.1} Hz")));
    }
    out.push('\n');
    for steps in STEPS_E12 {
        out.push_str(&format!("{steps:>10}"));
        for rate in RATES {
            let p = app.simulate_profile(&machine, steps, rate, &mut Noise::none());
            out.push_str(&format!("{:>12}", p.totals().mem_peak));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig04_overhead_is_negligible() {
        // Parse nothing: recompute the claim directly. Native vs
        // profiled at the highest rate differs by well under 5 %.
        let app = AppModel::default();
        let machine = thinkie();
        let native = summarize(&repeated_runs(&app, &machine, 100_000, 5, 40), |r| r.tx);
        let profiled = native.mean * (1.0 + OVERHEAD_AT_10HZ);
        assert!((profiled - native.mean) / native.mean < 0.05);
        let out = run_fig04();
        assert!(out.contains("dropped"));
    }

    #[test]
    fn fig06_top_rate_independence() {
        let app = AppModel::default();
        let machine = thinkie();
        let c1 = app
            .simulate_profile(&machine, 500_000, 0.1, &mut Noise::none())
            .totals()
            .cycles;
        let c2 = app
            .simulate_profile(&machine, 500_000, 10.0, &mut Noise::none())
            .totals()
            .cycles;
        assert_eq!(c1, c2);
    }

    #[test]
    fn fig06_bottom_underestimates_at_slow_rates() {
        let app = AppModel::default();
        let machine = thinkie();
        // Short run: 1e4 steps (~1 s) at 0.1 Hz -> one sample.
        let slow = app
            .simulate_profile(&machine, 10_000, 0.1, &mut Noise::none())
            .totals()
            .mem_peak;
        let fast = app
            .simulate_profile(&machine, 10_000, 10.0, &mut Noise::none())
            .totals()
            .mem_peak;
        assert!(slow < fast, "slow {slow} must underestimate fast {fast}");
        // Long run: even slow rates see the ramped RSS.
        let slow_long = app
            .simulate_profile(&machine, 5_000_000, 0.1, &mut Noise::none())
            .totals()
            .mem_peak;
        assert!(slow_long as f64 > 0.9 * fast as f64);
    }

    #[test]
    fn outputs_render_all_rows() {
        let out = run_fig06();
        for steps in STEPS_E12 {
            assert!(out.contains(&steps.to_string()));
        }
    }
}
