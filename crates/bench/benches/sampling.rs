//! Criterion bench: per-sample watcher cost — the profiling overhead
//! (E.1) measured directly. One watcher tick costs microseconds, so
//! even 10 Hz sampling consumes a negligible core fraction, which is
//! the mechanism behind Fig. 4's flat overhead.

use criterion::{criterion_group, criterion_main, Criterion};
use synapse::watcher::Watcher;
use synapse::watchers::{IoWatcher, MemWatcher};
use synapse_proc::{read_pid_io, read_pid_stat, read_pid_status};

fn proc_read_costs(c: &mut Criterion) {
    let pid = std::process::id() as i32;
    let mut group = c.benchmark_group("proc_reads");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("pid_stat", |b| b.iter(|| read_pid_stat(pid).unwrap()));
    group.bench_function("pid_status", |b| b.iter(|| read_pid_status(pid).unwrap()));
    group.bench_function("pid_io", |b| {
        b.iter(|| {
            let _ = read_pid_io(pid); // may be denied in containers
        })
    });
    group.finish();
}

fn watcher_tick_cost(c: &mut Criterion) {
    let pid = std::process::id() as i32;
    let mut group = c.benchmark_group("watcher_tick");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let mut mem = MemWatcher::new(pid);
    group.bench_function("mem", |b| b.iter(|| mem.sample(0.0, 0.1).unwrap()));
    let mut io = IoWatcher::new(pid);
    io.pre_process().unwrap();
    group.bench_function("io", |b| b.iter(|| io.sample(0.0, 0.1).unwrap()));
    group.finish();
}

criterion_group!(benches, proc_read_costs, watcher_tick_cost);
criterion_main!(benches);
