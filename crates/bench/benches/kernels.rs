//! Criterion bench: compute-kernel throughput (the E.3 ablation).
//!
//! Compares the in-cache (ASM-analogue) and out-of-cache (C-analogue)
//! matmul kernels plus the spin kernel when consuming a fixed cycle
//! budget, and measures per-unit quantization overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use synapse_atoms::{CMatmulKernel, ComputeKernel, InCacheAsmKernel, SpinKernel};

fn kernel_cycle_budget(c: &mut Criterion) {
    let mut group = c.benchmark_group("execute_cycles");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    let budget: u64 = 50_000_000;
    let asm = InCacheAsmKernel::new();
    let ck = CMatmulKernel::new();
    let spin = SpinKernel;
    group.bench_function(BenchmarkId::new("asm_incache", budget), |b| {
        b.iter(|| asm.execute_cycles(std::hint::black_box(budget)))
    });
    group.bench_function(BenchmarkId::new("c_outofcache", budget), |b| {
        b.iter(|| ck.execute_cycles(std::hint::black_box(budget)))
    });
    group.bench_function(BenchmarkId::new("spin", budget), |b| {
        b.iter(|| spin.execute_cycles(std::hint::black_box(budget)))
    });
    group.finish();
}

fn kernel_parallel_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("execute_cycles_parallel");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    let budget: u64 = 100_000_000;
    let spin = SpinKernel;
    for threads in [1u32, 2, 4] {
        group.bench_function(BenchmarkId::new("spin", threads), |b| {
            b.iter(|| spin.execute_cycles_parallel(std::hint::black_box(budget), threads))
        });
    }
    group.finish();
}

criterion_group!(benches, kernel_cycle_budget, kernel_parallel_scaling);
criterion_main!(benches);
