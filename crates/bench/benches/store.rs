//! Criterion bench: document store insert/find and profile
//! (de)serialization (the DB-backend ablation of §4.5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use serde_json::json;
use synapse_model::{Profile, ProfileKey, Sample, SystemInfo, Tags};
use synapse_store::{Collection, Document, Query};

fn profile_with_samples(n: usize) -> Profile {
    let mut p = Profile::new(
        ProfileKey::new("bench", Tags::parse("steps=1")),
        SystemInfo::default(),
        10.0,
    );
    p.runtime = n as f64 * 0.1;
    for i in 0..n {
        let mut s = Sample::at(i as f64 * 0.1, 0.1);
        s.compute.cycles = 1_000_000 + i as u64;
        p.push(s).unwrap();
    }
    p
}

fn collection_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("collection");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(20);
    group.bench_function("insert_1k_docs", |b| {
        b.iter(|| {
            let mut col = Collection::new("bench");
            for i in 0..1000 {
                col.insert(Document {
                    id: format!("d{i}"),
                    body: json!({"n": i, "kind": "bench"}),
                })
                .unwrap();
            }
            col.len()
        })
    });
    let mut col = Collection::new("bench");
    for i in 0..1000 {
        col.insert(Document {
            id: format!("d{i}"),
            body: json!({"n": i % 10, "kind": "bench"}),
        })
        .unwrap();
    }
    group.bench_function("find_in_1k_docs", |b| {
        let q = Query::all().field("n", 3);
        b.iter(|| col.find(std::hint::black_box(&q)).len())
    });
    group.finish();
}

fn profile_serialization(c: &mut Criterion) {
    let mut group = c.benchmark_group("profile_json");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(20);
    for n in [100usize, 1000, 10_000] {
        let p = profile_with_samples(n);
        group.bench_function(BenchmarkId::new("serialize", n), |b| {
            b.iter(|| p.to_json().unwrap().len())
        });
        let json = p.to_json().unwrap();
        group.bench_function(BenchmarkId::new("deserialize", n), |b| {
            b.iter(|| {
                Profile::from_json(std::hint::black_box(&json))
                    .unwrap()
                    .len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, collection_ops, profile_serialization);
criterion_main!(benches);
