//! Criterion bench: storage and memory atoms (the E.5 block-size
//! ablation on the real host).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use synapse_atoms::{MemoryAtom, StorageAtom};

fn storage_block_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage_write");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    let bytes: u64 = 4 << 20;
    group.throughput(Throughput::Bytes(bytes));
    for block in [4u64 << 10, 64 << 10, 1 << 20] {
        let dir = std::env::temp_dir().join("synapse-bench-storage");
        let mut atom = StorageAtom::with_config(&dir, block, block, 64 << 20).unwrap();
        group.bench_function(BenchmarkId::new("block", block), |b| {
            b.iter(|| atom.write(std::hint::black_box(bytes)).unwrap())
        });
        atom.cleanup();
    }
    group.finish();
}

fn memory_alloc_free(c: &mut Criterion) {
    let mut group = c.benchmark_group("memory_atom");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(20);
    let bytes: u64 = 16 << 20;
    group.throughput(Throughput::Bytes(bytes));
    for block in [64u64 << 10, 1 << 20, 4 << 20] {
        group.bench_function(BenchmarkId::new("alloc_free", block), |b| {
            let mut atom = MemoryAtom::with_config(block, 1 << 30);
            b.iter(|| {
                atom.allocate(std::hint::black_box(bytes));
                atom.free(bytes);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, storage_block_sizes, memory_alloc_free);
criterion_main!(benches);
