//! Criterion bench: emulator replay-loop cost (the "tight loop that
//! feeds into the Synapse atoms", §4.5) on the simulated backend, and
//! the sample-ordering ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use synapse::emulator::{EmulationPlan, Emulator};
use synapse_model::{Profile, ProfileKey, Sample, SystemInfo, Tags};
use synapse_sim::thinkie;

fn profile_with(nsamples: usize) -> Profile {
    let mut p = Profile::new(
        ProfileKey::new("bench", Tags::new()),
        SystemInfo::default(),
        10.0,
    );
    p.runtime = nsamples as f64 * 0.1;
    for i in 0..nsamples {
        let mut s = Sample::at(i as f64 * 0.1, 0.1);
        s.compute.cycles = 10_000_000;
        s.storage.bytes_written = 1 << 16;
        s.memory.allocated = 1 << 16;
        p.push(s).unwrap();
    }
    p
}

fn sim_replay_loop(c: &mut Criterion) {
    let machine = thinkie();
    let mut group = c.benchmark_group("sim_replay");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for n in [100usize, 1000, 10_000] {
        let profile = profile_with(n);
        let emulator = Emulator::default();
        group.bench_function(BenchmarkId::new("samples", n), |b| {
            b.iter(|| {
                emulator
                    .simulate(std::hint::black_box(&profile), &machine)
                    .tx
            })
        });
    }
    group.finish();
}

fn ordering_ablation(c: &mut Criterion) {
    let machine = thinkie();
    let profile = profile_with(1000);
    let mut group = c.benchmark_group("ordering");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let ordered = Emulator::new(EmulationPlan::default());
    let unordered = Emulator::new(EmulationPlan {
        preserve_sample_order: false,
        ..Default::default()
    });
    group.bench_function("preserve_order", |b| {
        b.iter(|| ordered.simulate(&profile, &machine).tx)
    });
    group.bench_function("merged", |b| {
        b.iter(|| unordered.simulate(&profile, &machine).tx)
    });
    group.finish();
}

criterion_group!(benches, sim_replay_loop, ordering_ablation);
criterion_main!(benches);
