//! The coordinator's handles into the process-wide telemetry registry
//! (`synapse_cluster_<name>` series; catalog in the README).

use std::sync::{Arc, OnceLock};

use synapse_telemetry::{exponential_buckets, global, Counter, Gauge, Histogram, DURATION_BUCKETS};

/// Lease-lifecycle counters, worker gauges, and probe latency.
pub(crate) struct ClusterMetrics {
    /// Leases handed to a driver (first claims and reclaims alike).
    pub leases_assigned: Arc<Counter>,
    /// Leases whose every point arrived.
    pub leases_completed: Arc<Counter>,
    /// Lease runs that ended in failure (transport, worker error).
    pub leases_failed: Arc<Counter>,
    /// Assignments of a lease that had been claimed before — the
    /// work-stealing / failure-recovery signal.
    pub leases_reassigned: Arc<Counter>,
    /// Leases the coordinator swept itself after fan-out.
    pub leases_local_fallback: Arc<Counter>,
    /// Straggler tails speculatively re-offered as brand-new leases
    /// by an idle driver.
    pub leases_split: Arc<Counter>,
    /// Worker-shipped aggregate sketch digests folded into the
    /// campaign's live view (one per completed lease whose range no
    /// earlier digest covered).
    pub sketch_merges: Arc<Counter>,
    /// Points per merged `batch` frame — the transport-efficiency
    /// signal (a warm cluster should sit near the configured
    /// `--batch-points`; a cold one is spread by landing jitter).
    pub batch_points: Arc<Histogram>,
    /// Liveness-probe (`GET /healthz`) latency against workers.
    pub probe_seconds: Arc<Histogram>,
}

impl ClusterMetrics {
    /// The process-wide handles (registering the series on first use).
    pub fn get() -> &'static ClusterMetrics {
        static METRICS: OnceLock<ClusterMetrics> = OnceLock::new();
        METRICS.get_or_init(|| {
            let r = global();
            ClusterMetrics {
                leases_assigned: r.counter(
                    "synapse_cluster_leases_assigned_total",
                    "Leases assigned to worker drivers (reassignments included).",
                ),
                leases_completed: r.counter(
                    "synapse_cluster_leases_completed_total",
                    "Leases fully streamed back from a worker.",
                ),
                leases_failed: r.counter(
                    "synapse_cluster_leases_failed_total",
                    "Lease runs that failed and were released for retry.",
                ),
                leases_reassigned: r.counter(
                    "synapse_cluster_leases_reassigned_total",
                    "Leases claimed again after an earlier claim released them.",
                ),
                leases_local_fallback: r.counter(
                    "synapse_cluster_leases_local_fallback_total",
                    "Leases the coordinator swept through its own engine.",
                ),
                leases_split: r.counter(
                    "synapse_cluster_leases_split_total",
                    "Straggler lease tails re-offered as new speculative leases.",
                ),
                sketch_merges: r.counter(
                    "synapse_cluster_sketch_merges_total",
                    "Worker aggregate digests merged into live campaign views.",
                ),
                batch_points: r.histogram(
                    // Count-valued histogram (points per frame): the
                    // _seconds/_bytes suffix scheme covers time and
                    // size units only, and the name is pinned in the
                    // published catalog.
                    // lint:allow(metric-catalog, reason = "count-valued histogram; unit-suffix scheme covers time/size only")
                    "synapse_cluster_batch_points",
                    "Points per merged lease batch frame.",
                    &exponential_buckets(1.0, 2.0, 12),
                ),
                probe_seconds: r.histogram(
                    "synapse_cluster_probe_seconds",
                    "Worker liveness-probe latency.",
                    DURATION_BUCKETS,
                ),
            }
        })
    }

    /// The labeled per-worker throughput gauge, refreshed after every
    /// completed lease (points of the lease / wall seconds it took).
    pub fn worker_throughput(worker: &str) -> Arc<Gauge> {
        global().gauge_with(
            "synapse_cluster_worker_points_per_sec",
            "Most recent per-lease throughput of one worker.",
            &[("worker", worker)],
        )
    }
}
