//! The coordinator: throughput-aware lease dispatch, worker drivers,
//! straggler tail-splitting, failure-driven reassignment, and the
//! local fallback that guarantees completion.
//!
//! One driver thread per live worker claims leases from the shared
//! [`LeaseTable`] and runs them to completion on its worker (`POST
//! /leases`, then watch the event stream, feeding every point — they
//! arrive packed in `batch` frames — into the merge [`Collector`]).
//! The table itself is planned by [`plan_leases`]: workers with no
//! throughput history get a small probe lease first, and main leases
//! are sized proportionally to the per-worker rates observed on
//! earlier campaigns (the `worker_points_per_sec` gauges), largest
//! first. The claim loop is work-stealing: fast workers naturally
//! take more leases, a dying worker's released lease is picked up by
//! whoever claims next, and an *idle* driver facing one straggling
//! lease speculatively re-runs its unlanded tail
//! ([`LeaseTable::split_tail`]) — completion is decided point-wise by
//! the collector, so the fast copy of the tail finishes the campaign
//! and the straggler's job is cancelled instead of setting the
//! makespan. When *every* remote worker is gone the coordinator
//! sweeps the remaining leases through its own engine — a cluster
//! degrades to a single process, never to a hung job.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use synapse_campaign::{
    expand_range, plan_leases, CampaignEngine, CampaignError, CampaignOutcome, CampaignReport,
    CampaignSpec, CancelToken, Lease, LeaseTable, LiveAggregates, PointEvent, ResultCache,
    RunConfig, RunStats,
};
use synapse_server::{Client, ClusterBackend};
use synapse_trace::TraceRecorder;

use crate::merge::Collector;
use crate::metrics::ClusterMetrics;
use crate::protocol::{self, WorkerEvent};
use crate::registry::WorkerRegistry;

/// Coordinator tuning knobs.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Leases per live worker: >1 gives reassignment granularity and
    /// lets fast workers steal work from slow ones.
    pub leases_per_worker: usize,
    /// A lease claimed this many times without completing poisons the
    /// job (prevents a spec that crashes every worker from spinning
    /// forever).
    pub max_lease_attempts: usize,
    /// Worker threads for locally-executed leases (0 ⇒ auto).
    pub local_workers: usize,
    /// Silence threshold on a worker's lease stream before the worker
    /// is presumed dead and the lease reassigned. Workers heartbeat
    /// every [`synapse_server::HEARTBEAT_EVERY`], so the default (two
    /// missed heartbeats) detects a frozen or partitioned worker in
    /// ~20 s instead of hanging on a flat socket timeout.
    pub stream_silence: Duration,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            leases_per_worker: 4,
            max_lease_attempts: 6,
            local_workers: 0,
            stream_silence: synapse_server::STREAM_SILENCE_TIMEOUT,
        }
    }
}

/// Don't bother splitting a straggler's tail below this many unlanded
/// points — the speculative re-run would cost more in lease dispatch
/// than it saves in makespan.
const MIN_SPLIT_POINTS: usize = 4;

/// The distributed-execution backend a coordinator-mode server plugs
/// into [`synapse_server::Server::with_cluster`].
pub struct Coordinator {
    config: ClusterConfig,
    registry: WorkerRegistry,
}

/// Fold one completed lease's shipped aggregate digest into the
/// campaign's live view — only if no earlier digest covered any index
/// of the lease's range. Split tails overlap their parent lease and a
/// replayed lease re-ships every point, so merging two digests whose
/// ranges intersect would double-count; first complete digest per
/// range wins, decided under the coverage lock so racing drivers
/// cannot both claim an overlap. A malformed digest leaves the view
/// untouched *and* the range unclaimed — the end-of-run catch-up
/// records those points directly.
fn merge_lease_digest(
    live: &LiveAggregates,
    coverage: &Mutex<Vec<bool>>,
    lease: &Lease,
    digest: Option<&serde_json::Value>,
) {
    let Some(digest) = digest else { return };
    let mut covered = coverage.lock().unwrap_or_else(|e| e.into_inner());
    let end = lease.end.min(covered.len());
    // lint:allow(no-panic-hot-path, reason = "end is clamped to covered.len() and start >= end returns first")
    if lease.start >= end || covered[lease.start..end].iter().any(|c| *c) {
        return;
    }
    if live.merge_digest(digest).is_some() {
        // lint:allow(no-panic-hot-path, reason = "same bounds as the guard above: start < end <= covered.len()")
        covered[lease.start..end].iter_mut().for_each(|c| *c = true);
        ClusterMetrics::get().sketch_merges.inc();
    }
}

/// How one lease run on one worker ended.
enum LeaseRun {
    /// Every point of the lease arrived (or the grid finished while
    /// it streamed); lease is done.
    Completed,
    /// The campaign's cancel token fired mid-lease; stop driving.
    Stopped,
    /// Transport broke or the worker reported failure; retry
    /// elsewhere.
    Failed(String),
}

impl Coordinator {
    /// A coordinator with an empty worker registry.
    pub fn new(config: ClusterConfig) -> Coordinator {
        Coordinator {
            config,
            registry: WorkerRegistry::new(),
        }
    }

    /// The worker registry (registration happens through the server's
    /// `/cluster/workers` endpoint or directly here).
    pub fn registry(&self) -> &WorkerRegistry {
        &self.registry
    }

    /// Drive one lease on one worker, feeding points into the
    /// collector as they stream in. A clean completion ships the
    /// lease's aggregate digest, folded into `live` via
    /// [`merge_lease_digest`].
    #[allow(clippy::too_many_arguments)]
    fn run_lease(
        &self,
        client: &Client,
        spec: &CampaignSpec,
        lease: &Lease,
        collector: &Collector,
        live: &LiveAggregates,
        coverage: &Mutex<Vec<bool>>,
        observer: &(dyn Fn(PointEvent) + Sync),
        cancel: &CancelToken,
    ) -> LeaseRun {
        let body = protocol::lease_request_json(spec, lease);
        let reply = match client.submit_lease(&body) {
            Ok(reply) => reply,
            Err(e) => return LeaseRun::Failed(format!("lease submit: {e}")),
        };
        // lint:allow(no-panic-hot-path, reason = "Value indexing is total; a missing key yields Null, never a panic")
        let Some(id) = reply["id"].as_str().map(str::to_string) else {
            return LeaseRun::Failed("lease submit reply carries no job id".into());
        };
        let mut worker_error: Option<String> = None;
        // Keepalive delivery matters: a lease queued behind a busy
        // worker emits only heartbeats, and the cancel check below
        // must still run on each one.
        let watched = client.watch_with_keepalive(&id, |line| {
            if cancel.is_cancelled() {
                return false; // hang up; the job is cancelled below
            }
            match protocol::parse_event(line) {
                Some(WorkerEvent::Batch(points)) => {
                    ClusterMetrics::get()
                        .batch_points
                        .observe(points.len() as f64);
                    collector.record_batch(points, observer);
                    // Split tails overlap their parent lease, so the
                    // grid can finish while this stream is mid-lease;
                    // hang up instead of waiting out the straggler.
                    if collector.is_complete() {
                        return false;
                    }
                }
                Some(WorkerEvent::Point { result, cached }) => {
                    collector.record(Arc::new(*result), cached, observer);
                    if collector.is_complete() {
                        return false;
                    }
                }
                Some(WorkerEvent::Malformed { reason }) => {
                    // The frame may have carried results; merging past
                    // it could leave holes. Fail the lease and re-run.
                    worker_error = Some(format!("malformed batch frame: {reason}"));
                    return false;
                }
                Some(WorkerEvent::Failed { error }) => worker_error = Some(error),
                Some(WorkerEvent::Truncated { dropped }) => {
                    // Should be impossible (lease rings are unbounded)
                    // but dropped lines were results: abort and re-run
                    // the lease rather than silently losing points.
                    worker_error = Some(format!("lease stream truncated ({dropped} lines lost)"));
                    return false;
                }
                _ => {}
            }
            true
        });
        if cancel.is_cancelled() {
            // Points already collected stay collected; stop the
            // worker-side sweep cooperatively.
            let _ = client.cancel(&id);
            return LeaseRun::Stopped;
        }
        if collector.is_complete() {
            // Every grid point landed (this lease's tail may have
            // finished on another worker). Stop the worker-side sweep
            // if it is still running and count the lease done — its
            // range is covered.
            let _ = client.cancel(&id);
            return LeaseRun::Completed;
        }
        if let Some(error) = worker_error {
            return LeaseRun::Failed(error);
        }
        match watched {
            // lint:allow(no-panic-hot-path, reason = "Value indexing is total; a missing key yields Null, never a panic")
            Ok(summary) if summary["event"].as_str() == Some("completed") => {
                merge_lease_digest(live, coverage, lease, summary.get("aggregates"));
                LeaseRun::Completed
            }
            Ok(summary) => LeaseRun::Failed(format!(
                "lease stream ended with {:?}",
                // lint:allow(no-panic-hot-path, reason = "Value indexing is total; a missing key yields Null, never a panic")
                summary["event"].as_str().unwrap_or("nothing")
            )),
            Err(e) => LeaseRun::Failed(format!("lease stream: {e}")),
        }
    }

    /// Pick the assigned lease with the most unlanded points and
    /// re-offer that tail as a brand-new available lease. Returns
    /// whether a split happened. The tail *overlaps* the straggler's
    /// range — its owner keeps streaming — and the collector's
    /// first-arrival-wins merge resolves the race; each lease splits
    /// at most once, and tails below [`MIN_SPLIT_POINTS`] are left
    /// alone, so speculation is bounded.
    fn split_straggler_tail(
        &self,
        table: &Mutex<LeaseTable>,
        collector: &Collector,
        worker_id: &str,
        recorder: Option<&TraceRecorder>,
    ) -> bool {
        let candidates = table
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .split_candidates();
        let mut best: Option<(Lease, usize)> = None;
        for lease in candidates {
            let missing = collector.missing_in(lease.start, lease.end);
            if missing >= MIN_SPLIT_POINTS && best.is_none_or(|(_, m)| missing > m) {
                best = Some((lease, missing));
            }
        }
        let Some((lease, missing)) = best else {
            return false;
        };
        // Points land roughly front-to-back within a lease, so the
        // unlanded range is approximately the suffix of `missing`
        // points; out-of-order landings only mean the tail overlaps a
        // little more than it had to.
        let mid = lease.end - missing;
        let mut table = table.lock().unwrap_or_else(|e| e.into_inner());
        match table.split_tail(lease.id, mid) {
            Some(_) => {
                ClusterMetrics::get().leases_split.inc();
                if let Some(recorder) = recorder {
                    recorder.record_lease("split", worker_id, mid, lease.end);
                }
                true
            }
            // Raced: the lease completed, released, or split since the
            // snapshot above.
            None => false,
        }
    }

    /// One worker's driver loop: claim, run, complete/release, until
    /// the table drains, the campaign cancels, a lease poisons the
    /// job, or this worker dies.
    #[allow(clippy::too_many_arguments)]
    fn drive_worker(
        &self,
        worker_id: &str,
        addr: &str,
        spec: &CampaignSpec,
        table: &Mutex<LeaseTable>,
        collector: &Collector,
        live: &LiveAggregates,
        coverage: &Mutex<Vec<bool>>,
        fatal: &Mutex<Option<String>>,
        observer: &(dyn Fn(PointEvent) + Sync),
        recorder: Option<&TraceRecorder>,
        cancel: &CancelToken,
    ) {
        // Both timeouts bounded by the silence threshold (probe cap
        // 5 s): a frozen worker whose kernel still accepts connections
        // must fail the post-disconnect liveness probe promptly, or
        // the local-fallback sweep waits a whole socket timeout.
        let mut client = Client::new(addr.to_string())
            .with_stream_silence(self.config.stream_silence)
            .with_socket_timeout(self.config.stream_silence.min(Duration::from_secs(5)));
        // Propagate the campaign's causality id on every request this
        // driver makes (`X-Synapse-Trace`): workers echo it in lease
        // events and batch frames, tying their streams to the trace.
        if let Some(recorder) = recorder {
            client = client.with_trace(recorder.trace_id());
        }
        loop {
            if cancel.is_cancelled() || fatal.lock().unwrap_or_else(|e| e.into_inner()).is_some() {
                return;
            }
            // Completion is point-wise: once every grid index landed
            // (wherever it ran), this driver is done even if some
            // lease is still nominally assigned to a straggler.
            if collector.is_complete() {
                return;
            }
            let metrics = ClusterMetrics::get();
            let claimed = {
                let mut table = table.lock().unwrap_or_else(|e| e.into_inner());
                if table.is_complete() {
                    return;
                }
                table
                    .claim(worker_id)
                    .map(|lease| (lease, table.attempts(lease.id)))
            };
            let Some((lease, attempts_now)) = claimed else {
                // Nothing to claim, grid unfinished: every remaining
                // lease is assigned to some other driver. If one of
                // them is straggling, speculatively re-offer its
                // unlanded tail as a fresh lease (claimed on the next
                // iteration — by this idle driver, in practice);
                // otherwise poll cheaply.
                if !self.split_straggler_tail(table, collector, worker_id, recorder) {
                    std::thread::sleep(Duration::from_millis(25));
                }
                continue;
            };
            metrics.leases_assigned.inc();
            if attempts_now > 1 {
                metrics.leases_reassigned.inc();
            }
            if let Some(recorder) = recorder {
                let phase = if attempts_now > 1 {
                    "reassigned"
                } else {
                    "assigned"
                };
                recorder.record_lease(phase, worker_id, lease.start, lease.end);
            }
            let lease_started = Instant::now();
            match self.run_lease(
                &client, spec, &lease, collector, live, coverage, observer, cancel,
            ) {
                LeaseRun::Completed => {
                    table
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .complete(lease.id);
                    self.registry.credit_lease(worker_id);
                    metrics.leases_completed.inc();
                    if let Some(recorder) = recorder {
                        recorder.record_lease("completed", worker_id, lease.start, lease.end);
                    }
                    let secs = lease_started.elapsed().as_secs_f64();
                    if secs > 0.0 {
                        ClusterMetrics::worker_throughput(worker_id)
                            .set((lease.end - lease.start) as f64 / secs);
                    }
                }
                LeaseRun::Stopped => {
                    table
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .release(lease.id);
                    return;
                }
                LeaseRun::Failed(reason) => {
                    let attempts = {
                        let mut table = table.lock().unwrap_or_else(|e| e.into_inner());
                        table.release(lease.id);
                        table.attempts(lease.id)
                    };
                    self.registry.record_failure(worker_id);
                    metrics.leases_failed.inc();
                    if let Some(recorder) = recorder {
                        recorder.record_lease("failed", worker_id, lease.start, lease.end);
                    }
                    if attempts >= self.config.max_lease_attempts {
                        *fatal.lock().unwrap_or_else(|e| e.into_inner()) = Some(format!(
                            "lease {} ({}..{}) failed {attempts} times, last: {reason}",
                            lease.id, lease.start, lease.end
                        ));
                        return;
                    }
                    // Worker death vs. transient failure: probe. A dead
                    // worker retires this driver; its released lease
                    // reassigns to the survivors (or the local
                    // fallback).
                    let probe_started = Instant::now();
                    let probe = client.healthz();
                    metrics.probe_seconds.observe_since(probe_started);
                    if probe.is_err() {
                        self.registry.mark_dead(worker_id);
                        return;
                    }
                    // Alive but failing (momentarily at its connection
                    // cap, draining for shutdown): back off so a
                    // transient blip cannot burn every attempt in
                    // milliseconds and poison the job.
                    std::thread::sleep(Duration::from_millis(200 * attempts.min(5) as u64));
                }
            }
        }
    }
}

impl ClusterBackend for Coordinator {
    fn run_distributed(
        &self,
        spec: &CampaignSpec,
        cache: &ResultCache,
        live: &LiveAggregates,
        observer: &(dyn Fn(PointEvent) + Sync),
        recorder: Option<&TraceRecorder>,
        cancel: &CancelToken,
    ) -> Result<CampaignOutcome, CampaignError> {
        let started = Instant::now();
        let total = spec.point_count();
        observer(PointEvent::Started { total });

        let workers = self.registry.live();
        let lease_count = workers.len().max(1) * self.config.leases_per_worker;
        // Throughput-aware plan: per-worker rates observed on earlier
        // campaigns weight the main lease sizes (largest first); every
        // worker with no history yet gets a small probe lease up front
        // so its first assignment measures it cheaply.
        let weights: Vec<f64> = workers
            .iter()
            .map(|(id, _)| ClusterMetrics::worker_throughput(id).get())
            .collect();
        let probes = weights.iter().filter(|w| **w <= 0.0 || w.is_nan()).count();
        let table = Mutex::new(LeaseTable::from_leases(plan_leases(
            total,
            lease_count,
            probes,
            &weights,
        )));
        let collector = Collector::new(total);
        // Which grid indices a merged worker digest already covers:
        // the catch-up after fan-out records only the rest, so the
        // live view counts every point exactly once.
        let coverage: Mutex<Vec<bool>> = Mutex::new(vec![false; total]);
        let fatal: Mutex<Option<String>> = Mutex::new(None);

        if !workers.is_empty() {
            std::thread::scope(|scope| {
                for (worker_id, addr) in &workers {
                    let (table, collector, fatal) = (&table, &collector, &fatal);
                    let coverage = &coverage;
                    scope.spawn(move || {
                        self.drive_worker(
                            worker_id, addr, spec, table, collector, live, coverage, fatal,
                            observer, recorder, cancel,
                        )
                    });
                }
            });
        }
        if let Some(reason) = fatal.into_inner().unwrap_or_else(|e| e.into_inner()) {
            return Err(CampaignError::Cluster(reason));
        }

        // Whatever no remote worker completed (none registered, all
        // died, or stragglers released on cancel) sweeps locally —
        // the coordinator is always its own last worker. Skipped when
        // the collector already has every point: drivers exit the
        // moment the grid is point-complete, which can leave leases
        // nominally assigned even though their ranges are covered.
        let leftover = table
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .drain_incomplete();
        if !leftover.is_empty() && !cancel.is_cancelled() && !collector.is_complete() {
            let config = RunConfig {
                workers: self.config.local_workers,
            };
            let shim = |event: PointEvent| {
                if let PointEvent::PointDone { result, cached, .. } = event {
                    collector.record(result, cached, observer);
                }
            };
            for lease in leftover {
                if cancel.is_cancelled() {
                    break;
                }
                // A split tail (or a replayed lease) may already be
                // fully covered by what other workers delivered.
                if collector.missing_in(lease.start, lease.end) == 0 {
                    continue;
                }
                ClusterMetrics::get().leases_local_fallback.inc();
                if let Some(recorder) = recorder {
                    recorder.record_lease("local", "coordinator", lease.start, lease.end);
                }
                // Materialize only this lease's slice — finishing one
                // straggler lease of a huge grid must cost the lease,
                // not the grid.
                let slice = expand_range(spec, lease.start, lease.end);
                match CampaignEngine::new(&slice, cache, &config).run(&shim, cancel) {
                    Ok(_) | Err(CampaignError::Cancelled { .. }) => {}
                    Err(e) => return Err(e),
                }
            }
            cache.persist()?;
        }

        let (done, cache_hits, simulated) = collector.counts();
        if cancel.is_cancelled() && done < total {
            observer(PointEvent::Cancelled { done, total });
            return Err(CampaignError::Cancelled { done, total });
        }
        if done < total {
            return Err(CampaignError::Cluster(format!(
                "grid incomplete after fan-out: {done}/{total} points"
            )));
        }
        // Stage walls mirror the local pipeline's: fan-out is the
        // sweep, merge + assembly is aggregation, expansion is lazy
        // (per-lease slices) and therefore folded into the sweep.
        let sweep_secs = started.elapsed().as_secs_f64();
        let aggregate_started = Instant::now();
        let results = collector.into_results()?;
        // Catch-up for the live view: indices no merged digest covers
        // (local-fallback sweeps, leases finished by overlapping split
        // tails, streams that broke before their terminal event) are
        // recorded point by point from the merged results. Together
        // with the coverage rule above, every grid point lands in the
        // live aggregates exactly once — which is why a cluster run's
        // `/aggregates` agrees with a single-process sweep within
        // sketch error.
        {
            let covered = coverage.lock().unwrap_or_else(|e| e.into_inner());
            for (result, covered) in results.iter().zip(covered.iter()) {
                if !covered {
                    live.record(result);
                }
            }
        }
        let report = CampaignReport::assemble(spec, &results)?;
        let stats = RunStats {
            points: total,
            simulated,
            cache_hits,
            wall_secs: started.elapsed().as_secs_f64(),
            expand_secs: 0.0,
            sweep_secs,
            aggregate_secs: aggregate_started.elapsed().as_secs_f64(),
        };
        observer(PointEvent::Finished { stats });
        Ok(CampaignOutcome { report, stats })
    }

    fn register_worker(&self, addr: &str) -> serde_json::Value {
        self.registry.register(addr)
    }

    fn deregister_worker(&self, id: &str) -> Option<serde_json::Value> {
        self.registry.deregister(id)
    }

    fn heartbeat(&self, id: &str) -> Option<serde_json::Value> {
        self.registry.heartbeat(id)
    }

    fn status(&self) -> serde_json::Value {
        // The status probe doubles as the pull-side heartbeat: every
        // `synapse cluster status` refreshes liveness for real.
        self.registry.status_json(|addr| {
            let started = Instant::now();
            let alive = Client::new(addr.to_string()).healthz().is_ok();
            ClusterMetrics::get().probe_seconds.observe_since(started);
            alive
        })
    }
}
