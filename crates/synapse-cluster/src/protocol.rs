//! Wire forms of the coordinator↔worker protocol.
//!
//! Workers are plain `synapse serve` processes: a lease travels as the
//! JSON [`LeaseRequest`](synapse_server::LeaseRequest) body of `POST
//! /leases`, and results come back over the worker's ordinary NDJSON
//! event stream — the only lease-specific extension is that each
//! `point` event carries the full serialized
//! [`PointResult`](synapse_campaign::PointResult) under `"result"`, so
//! the coordinator can reassemble a byte-stable report without a
//! second fetch.

use serde_json::Value;
use synapse_campaign::{CampaignSpec, Lease, PointResult};
use synapse_server::LeaseRequest;

/// Serialize the `POST /leases` body for one lease of a spec.
pub fn lease_request_json(spec: &CampaignSpec, lease: &Lease) -> String {
    let request = LeaseRequest {
        spec: spec.clone(),
        start: lease.start,
        end: lease.end,
    };
    serde_json::to_string(&request).expect("lease request serializes")
}

/// One parsed line of a worker's lease event stream, reduced to what
/// the coordinator acts on.
#[derive(Debug)]
pub enum WorkerEvent {
    /// The lease sweep started on the worker.
    Started,
    /// One point landed, with its full result (global grid index
    /// inside) and whether the worker served it from cache.
    Point {
        /// The reconstructed per-point result (boxed: this variant
        /// would otherwise dwarf the lifecycle ones).
        result: Box<PointResult>,
        /// Whether the worker's cache satisfied the point.
        cached: bool,
    },
    /// Every point of the lease landed.
    Completed,
    /// The lease stopped early (worker-side cancellation — e.g. the
    /// worker is shutting down).
    Cancelled,
    /// The worker's sweep errored.
    Failed {
        /// The worker's error message.
        error: String,
    },
    /// The worker's event ring dropped lines before this stream read
    /// them. Lease rings are unbounded so this cannot happen on a
    /// stock worker, but a coordinator must treat it as lease failure
    /// — the dropped lines were results.
    Truncated {
        /// How many lines were dropped.
        dropped: u64,
    },
    /// Snapshots, heartbeats — nothing to merge.
    Other,
}

/// Parse one NDJSON line of a lease stream. `None` for non-JSON lines
/// (a malformed stream is treated as a transport failure by the
/// caller when the terminal event never arrives).
pub fn parse_event(line: &str) -> Option<WorkerEvent> {
    let value: Value = serde_json::from_str(line).ok()?;
    let event = match value["event"].as_str()? {
        "started" => WorkerEvent::Started,
        "point" => {
            let result: PointResult = serde_json::from_value(value["result"].clone()).ok()?;
            WorkerEvent::Point {
                result: Box::new(result),
                cached: value["cached"].as_bool().unwrap_or(false),
            }
        }
        "completed" => WorkerEvent::Completed,
        "cancelled" => WorkerEvent::Cancelled,
        "failed" => WorkerEvent::Failed {
            error: value["error"]
                .as_str()
                .unwrap_or("worker reported failure")
                .to_string(),
        },
        "truncated" => WorkerEvent::Truncated {
            dropped: value["dropped"].as_u64().unwrap_or(0),
        },
        _ => WorkerEvent::Other,
    };
    Some(event)
}

#[cfg(test)]
mod tests {
    use super::*;
    use synapse_campaign::expand;

    fn spec() -> CampaignSpec {
        CampaignSpec::from_toml(
            r#"
            name = "protocol"
            seed = 1
            machines = ["thinkie"]
            kernels = ["asm", "c"]

            [[workloads]]
            app = "gromacs"
            steps = [1000, 2000]
            "#,
        )
        .unwrap()
    }

    #[test]
    fn lease_request_roundtrips() {
        let s = spec();
        let lease = Lease {
            id: 1,
            start: 1,
            end: 3,
        };
        let json = lease_request_json(&s, &lease);
        let back: LeaseRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(back.spec, s);
        assert_eq!((back.start, back.end), (1, 3));
    }

    #[test]
    fn point_events_reconstruct_results_exactly() {
        let s = spec();
        let point = &expand(&s)[2];
        let result = synapse_campaign::simulate_point(point).unwrap();
        let line = serde_json::to_string(&serde_json::json!({
            "event": "point",
            "index": point.index,
            "cached": true,
            "result": serde_json::to_value(&result).unwrap(),
        }))
        .unwrap();
        match parse_event(&line) {
            Some(WorkerEvent::Point {
                result: back,
                cached,
            }) => {
                assert!(cached);
                assert_eq!(*back, result, "exact roundtrip, floats included");
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn lifecycle_and_noise_lines_classify() {
        assert!(matches!(
            parse_event("{\"event\":\"started\",\"total\":4}"),
            Some(WorkerEvent::Started)
        ));
        assert!(matches!(
            parse_event("{\"event\":\"completed\"}"),
            Some(WorkerEvent::Completed)
        ));
        assert!(matches!(
            parse_event("{\"event\":\"cancelled\",\"done\":1}"),
            Some(WorkerEvent::Cancelled)
        ));
        match parse_event("{\"event\":\"failed\",\"error\":\"boom\"}") {
            Some(WorkerEvent::Failed { error }) => assert_eq!(error, "boom"),
            other => panic!("wrong parse: {other:?}"),
        }
        assert!(matches!(
            parse_event("{\"event\":\"snapshot\",\"done\":32}"),
            Some(WorkerEvent::Other)
        ));
        assert!(matches!(
            parse_event("{\"event\":\"truncated\",\"dropped\":5}"),
            Some(WorkerEvent::Truncated { dropped: 5 })
        ));
        assert!(parse_event("not json").is_none());
        // A point event with a mangled result payload is unusable.
        assert!(parse_event("{\"event\":\"point\",\"result\":{\"nope\":1}}").is_none());
    }
}
