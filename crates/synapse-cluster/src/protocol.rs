//! Wire forms of the coordinator↔worker protocol.
//!
//! Workers are plain `synapse serve` processes: a lease travels as the
//! JSON [`LeaseRequest`] body of `POST
//! /leases`, and results come back over the worker's ordinary NDJSON
//! event stream. The lease-specific extensions: results arrive packed
//! into versioned, length-prefixed `batch` frames (or, from a worker
//! running with `--batch-points 1`, as legacy per-point `point`
//! events), each point carrying the full serialized
//! [`PointResult`] under `"result"`, so
//! the coordinator can reassemble a byte-stable report without a
//! second fetch. The full wire spec, including the byte-level frame
//! layout and version-compatibility rules, lives in
//! `docs/PROTOCOL.md`.

use serde_json::Value;
use synapse_campaign::{CampaignSpec, Lease, PointResult};
use synapse_server::{LeaseRequest, BATCH_FRAME_VERSION};

/// Serialize the `POST /leases` body for one lease of a spec.
pub fn lease_request_json(spec: &CampaignSpec, lease: &Lease) -> String {
    let request = LeaseRequest {
        spec: spec.clone(),
        start: lease.start,
        end: lease.end,
    };
    serde_json::to_string(&request).expect("lease request serializes")
}

/// One parsed line of a worker's lease event stream, reduced to what
/// the coordinator acts on.
#[derive(Debug)]
pub enum WorkerEvent {
    /// The lease sweep started on the worker.
    Started,
    /// One point landed, with its full result (global grid index
    /// inside) and whether the worker served it from cache.
    Point {
        /// The reconstructed per-point result (boxed: this variant
        /// would otherwise dwarf the lifecycle ones).
        result: Box<PointResult>,
        /// Whether the worker's cache satisfied the point.
        cached: bool,
    },
    /// One `batch` frame of landed points (version-checked and
    /// length-validated; see `docs/PROTOCOL.md` for the layout). Each
    /// entry is the reconstructed result plus whether the worker's
    /// cache satisfied it.
    Batch(Vec<(PointResult, bool)>),
    /// A frame that *claimed* to be a batch but failed validation —
    /// unknown version, count/length-prefix mismatch, or an
    /// unparseable point. The coordinator must treat the lease as
    /// failed (results may have been lost), unlike [`WorkerEvent::Other`]
    /// noise which is safely ignorable.
    Malformed {
        /// What check the frame failed.
        reason: String,
    },
    /// Every point of the lease landed.
    Completed,
    /// The lease stopped early (worker-side cancellation — e.g. the
    /// worker is shutting down).
    Cancelled,
    /// The worker's sweep errored.
    Failed {
        /// The worker's error message.
        error: String,
    },
    /// The worker's event ring dropped lines before this stream read
    /// them. Lease rings are unbounded so this cannot happen on a
    /// stock worker, but a coordinator must treat it as lease failure
    /// — the dropped lines were results.
    Truncated {
        /// How many lines were dropped.
        dropped: u64,
    },
    /// Snapshots, heartbeats — nothing to merge.
    Other,
}

/// Parse one NDJSON line of a lease stream. `None` for non-JSON lines
/// (a malformed stream is treated as a transport failure by the
/// caller when the terminal event never arrives).
pub fn parse_event(line: &str) -> Option<WorkerEvent> {
    let value: Value = serde_json::from_str(line).ok()?;
    let event = match value["event"].as_str()? {
        "started" => WorkerEvent::Started,
        "point" => {
            let result: PointResult = serde_json::from_value(value["result"].clone()).ok()?;
            WorkerEvent::Point {
                result: Box::new(result),
                cached: value["cached"].as_bool().unwrap_or(false),
            }
        }
        "batch" => parse_batch(line, &value),
        "completed" => WorkerEvent::Completed,
        "cancelled" => WorkerEvent::Cancelled,
        "failed" => WorkerEvent::Failed {
            error: value["error"]
                .as_str()
                .unwrap_or("worker reported failure")
                .to_string(),
        },
        "truncated" => WorkerEvent::Truncated {
            dropped: value["dropped"].as_u64().unwrap_or(0),
        },
        _ => WorkerEvent::Other,
    };
    Some(event)
}

/// Validate and unpack one `batch` frame. Every failure is
/// [`WorkerEvent::Malformed`], never a silent drop: a batch that
/// doesn't check out may have carried results, and the coordinator
/// must fail the lease rather than merge a hole into the grid.
fn parse_batch(line: &str, value: &Value) -> WorkerEvent {
    let malformed = |reason: &str| WorkerEvent::Malformed {
        reason: reason.to_string(),
    };
    match value["v"].as_u64() {
        Some(BATCH_FRAME_VERSION) => {}
        Some(v) => {
            return WorkerEvent::Malformed {
                reason: format!("unsupported batch frame version {v}"),
            }
        }
        None => return malformed("batch frame missing version"),
    }
    let Some(count) = value["n"].as_u64() else {
        return malformed("batch frame missing point count");
    };
    let Some(declared_len) = value["len"].as_u64() else {
        return malformed("batch frame missing length prefix");
    };
    // `points` is by construction the frame's final key, so its array
    // text occupies exactly the last `len + 1` bytes before the
    // closing brace. Recomputing the array's position from the
    // declared length and checking the structure around it catches
    // truncated, spliced, or re-framed lines.
    let line = line.trim_end();
    let declared_len = declared_len as usize;
    let arr_start = match (line.len() - 1).checked_sub(declared_len) {
        Some(start) if line.ends_with('}') => start,
        _ => return malformed("batch length prefix exceeds frame"),
    };
    let prefix_ok = line.is_char_boundary(arr_start)
        && line[arr_start..].starts_with('[')
        && line[..arr_start].ends_with("\"points\":");
    if !prefix_ok {
        return malformed("batch length prefix does not match frame");
    }
    let Some(entries) = value["points"].as_array() else {
        return malformed("batch frame missing points array");
    };
    if entries.len() as u64 != count {
        return WorkerEvent::Malformed {
            reason: format!(
                "batch frame declares {count} points but carries {}",
                entries.len()
            ),
        };
    }
    let mut points = Vec::with_capacity(entries.len());
    for (i, entry) in entries.iter().enumerate() {
        let Some(cached) = entry["cached"].as_bool() else {
            return WorkerEvent::Malformed {
                reason: format!("batch point {i} missing cached flag"),
            };
        };
        let Ok(result) = serde_json::from_value::<PointResult>(entry["result"].clone()) else {
            return WorkerEvent::Malformed {
                reason: format!("batch point {i} does not parse as a result"),
            };
        };
        points.push((result, cached));
    }
    WorkerEvent::Batch(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use synapse_campaign::expand;

    fn spec() -> CampaignSpec {
        CampaignSpec::from_toml(
            r#"
            name = "protocol"
            seed = 1
            machines = ["thinkie"]
            kernels = ["asm", "c"]

            [[workloads]]
            app = "gromacs"
            steps = [1000, 2000]
            "#,
        )
        .unwrap()
    }

    #[test]
    fn lease_request_roundtrips() {
        let s = spec();
        let lease = Lease {
            id: 1,
            start: 1,
            end: 3,
        };
        let json = lease_request_json(&s, &lease);
        let back: LeaseRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(back.spec, s);
        assert_eq!((back.start, back.end), (1, 3));
    }

    #[test]
    fn point_events_reconstruct_results_exactly() {
        let s = spec();
        let point = &expand(&s)[2];
        let result = synapse_campaign::simulate_point(point).unwrap();
        let line = serde_json::to_string(&serde_json::json!({
            "event": "point",
            "index": point.index,
            "cached": true,
            "result": serde_json::to_value(&result).unwrap(),
        }))
        .unwrap();
        match parse_event(&line) {
            Some(WorkerEvent::Point {
                result: back,
                cached,
            }) => {
                assert!(cached);
                assert_eq!(*back, result, "exact roundtrip, floats included");
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn batch_frames_roundtrip_exactly() {
        use std::sync::Arc;
        let s = spec();
        let results: Vec<_> = expand(&s)
            .iter()
            .map(|p| synapse_campaign::simulate_point(p).unwrap())
            .collect();
        let packed: Vec<(Arc<PointResult>, bool)> = results
            .iter()
            .enumerate()
            .map(|(i, r)| (Arc::new(r.clone()), i % 2 == 0))
            .collect();
        // A coordinator causality id travels as an extra `trace` key —
        // the parser must tolerate (and ignore) it.
        let line = synapse_server::lease_batch_line(&packed, Some("t0123456789abcdef"));
        match parse_event(&line) {
            Some(WorkerEvent::Batch(points)) => {
                assert_eq!(points.len(), results.len());
                for ((back, cached), (i, original)) in points.iter().zip(results.iter().enumerate())
                {
                    assert_eq!(back, original, "exact roundtrip, floats included");
                    assert_eq!(*cached, i % 2 == 0);
                }
            }
            other => panic!("wrong parse: {other:?}"),
        }
        // An empty batch is legal (a lease can flush nothing).
        match parse_event(&synapse_server::lease_batch_line(&[], None)) {
            Some(WorkerEvent::Batch(points)) => assert!(points.is_empty()),
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn corrupt_batch_frames_classify_as_malformed_not_noise() {
        use std::sync::Arc;
        let s = spec();
        let result = synapse_campaign::simulate_point(&expand(&s)[0]).unwrap();
        let good = synapse_server::lease_batch_line(&[(Arc::new(result), false)], None);
        assert!(matches!(parse_event(&good), Some(WorkerEvent::Batch(_))));

        let assert_malformed = |line: &str, why: &str| match parse_event(line) {
            Some(WorkerEvent::Malformed { reason }) => {
                assert!(!reason.is_empty(), "{why}")
            }
            other => panic!("{why}: expected Malformed, got {other:?}"),
        };

        // Unknown frame version: a future worker must not be merged
        // by an old coordinator that can't validate its layout.
        assert_malformed(
            &good.replacen("\"v\":1", "\"v\":2", 1),
            "version from the future",
        );
        assert_malformed(&good.replacen(",\"v\":1", "", 1), "missing version");
        // Bogus length prefix (too large and too small).
        assert_malformed(
            &good.replacen("\"len\":", "\"len\":9", 1),
            "inflated length prefix",
        );
        assert_malformed(
            &good.replacen("\"len\":", "\"len\":1000000000", 1),
            "length prefix past the frame",
        );
        // Count disagreeing with the payload.
        assert_malformed(&good.replacen("\"n\":1", "\"n\":3", 1), "count mismatch");
        // A spliced frame: valid JSON, but the points array was
        // swapped out without fixing the prefix.
        assert_malformed(
            &good.replacen("\"cached\":false", "\"cached\":true", 1),
            "payload length drifted from prefix",
        );
        // A mangled point inside an otherwise-sound frame. (Build a
        // fresh frame so n/len agree with the broken payload.)
        let payload = "[{\"cached\":true,\"result\":{\"no\":1}}]";
        let broken = format!(
            "{{\"event\":\"batch\",\"v\":1,\"n\":1,\"len\":{},\"points\":{}}}",
            payload.len(),
            payload
        );
        assert_malformed(&broken, "unparseable point");

        // A *truncated* line stops being JSON at all → transport-level
        // noise (`None`); the missing terminal event fails the lease.
        assert!(parse_event(&good[..good.len() / 2]).is_none());
    }

    #[test]
    fn lifecycle_and_noise_lines_classify() {
        assert!(matches!(
            parse_event("{\"event\":\"started\",\"total\":4}"),
            Some(WorkerEvent::Started)
        ));
        assert!(matches!(
            parse_event("{\"event\":\"completed\"}"),
            Some(WorkerEvent::Completed)
        ));
        assert!(matches!(
            parse_event("{\"event\":\"cancelled\",\"done\":1}"),
            Some(WorkerEvent::Cancelled)
        ));
        match parse_event("{\"event\":\"failed\",\"error\":\"boom\"}") {
            Some(WorkerEvent::Failed { error }) => assert_eq!(error, "boom"),
            other => panic!("wrong parse: {other:?}"),
        }
        assert!(matches!(
            parse_event("{\"event\":\"snapshot\",\"done\":32}"),
            Some(WorkerEvent::Other)
        ));
        assert!(matches!(
            parse_event("{\"event\":\"truncated\",\"dropped\":5}"),
            Some(WorkerEvent::Truncated { dropped: 5 })
        ));
        assert!(parse_event("not json").is_none());
        // A point event with a mangled result payload is unusable.
        assert!(parse_event("{\"event\":\"point\",\"result\":{\"nope\":1}}").is_none());
    }
}
