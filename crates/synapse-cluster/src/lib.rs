#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! `synapse-cluster` — distributed campaign fan-out across cooperating
//! `synapse serve` processes.
//!
//! Since PR 3 one serve process bounds all sweep throughput; the next
//! scale step (ROADMAP "multi-process fan-out") is several processes
//! cooperating on one campaign. The unit of distribution is the grid
//! point — like task-level fan-out in the pilot-job systems the paper
//! builds on — batched into **leases**: contiguous slices of the grid
//! produced by `synapse_campaign::partition`.
//!
//! Topology: one **coordinator** (a serve process with a [`Coordinator`]
//! backend attached via `synapse_server::Server::with_cluster`) and N
//! **workers** (plain `synapse serve` processes, optionally sharing one
//! lock-aware sharded cache directory). A `POST /campaigns?cluster=1`
//! submission partitions the grid into leases, fans them out over the
//! registered workers (`POST /leases` + event-stream watch per lease),
//! and merges the returned point streams into
//!
//! * one ordered NDJSON event stream (globally monotone `done`
//!   counter, same event shapes as a local sweep), and
//! * one byte-stable report — `CampaignReport::assemble` over results
//!   collected in grid order is bit-identical to a single-process run,
//!   because per-point results are deterministic and `f64`s round-trip
//!   exactly through the JSON layer.
//!
//! Failure model: a worker dying mid-lease breaks its event stream;
//! the driver releases the lease back to the table, marks the worker
//! dead, and a surviving worker (or, once none remain, the
//! coordinator's own engine) re-runs it. Replayed points deduplicate
//! in the merge collector, so partial lease replays are harmless. A
//! lease that keeps failing poisons the job after a bounded number of
//! attempts instead of retrying forever.
//!
//! Modules: [`protocol`] (wire forms), [`registry`] (worker
//! registry + health), [`merge`] (ordered merge collector),
//! [`coordinator`] (lease dispatch, retry, local fallback).

pub mod coordinator;
pub mod merge;
mod metrics;
pub mod protocol;
pub mod registry;

pub use coordinator::{ClusterConfig, Coordinator};
pub use merge::Collector;
pub use registry::WorkerRegistry;
