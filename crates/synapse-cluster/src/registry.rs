//! The coordinator's worker registry: who is in the cluster, who is
//! alive, and how much work each worker has carried.
//!
//! Registration is idempotent by address (re-registering a dead worker
//! revives it — how `synapse cluster add-worker` brings a restarted
//! process back). Liveness is failure-driven: drivers mark a worker
//! dead when its transport breaks and a health probe fails; explicit
//! heartbeats (`POST /cluster/workers/<id>/heartbeat`) and status
//! probes refresh `last_seen`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use serde_json::{json, Value};

#[derive(Debug)]
struct WorkerEntry {
    id: u64,
    addr: String,
    alive: bool,
    leases_completed: u64,
    failures: u64,
    last_seen: Instant,
    registered: Instant,
}

impl WorkerEntry {
    fn public_id(&self) -> String {
        format!("w{}", self.id)
    }

    fn doc(&self) -> Value {
        json!({
            "id": self.public_id(),
            "addr": self.addr,
            "alive": self.alive,
            "leases_completed": self.leases_completed,
            "failures": self.failures,
            "last_seen_secs": self.last_seen.elapsed().as_secs_f64(),
            "registered_secs": self.registered.elapsed().as_secs_f64(),
        })
    }
}

/// Thread-safe registry of the coordinator's workers.
#[derive(Debug, Default)]
pub struct WorkerRegistry {
    workers: Mutex<Vec<WorkerEntry>>,
    next_id: AtomicU64,
}

impl WorkerRegistry {
    /// An empty registry.
    pub fn new() -> WorkerRegistry {
        WorkerRegistry {
            workers: Mutex::new(Vec::new()),
            next_id: AtomicU64::new(1),
        }
    }

    /// Register a worker by address, or revive an existing entry with
    /// the same address. Returns the worker document.
    pub fn register(&self, addr: &str) -> Value {
        let mut workers = self.workers.lock().expect("registry lock");
        if let Some(entry) = workers.iter_mut().find(|w| w.addr == addr) {
            entry.alive = true;
            entry.last_seen = Instant::now();
            return entry.doc();
        }
        let entry = WorkerEntry {
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            addr: addr.to_string(),
            alive: true,
            leases_completed: 0,
            failures: 0,
            last_seen: Instant::now(),
            registered: Instant::now(),
        };
        let doc = entry.doc();
        workers.push(entry);
        doc
    }

    /// Remove a worker by public id, returning its final document.
    pub fn deregister(&self, public_id: &str) -> Option<Value> {
        let mut workers = self.workers.lock().expect("registry lock");
        let idx = workers.iter().position(|w| w.public_id() == public_id)?;
        Some(workers.remove(idx).doc())
    }

    /// Record an explicit liveness heartbeat.
    pub fn heartbeat(&self, public_id: &str) -> Option<Value> {
        let mut workers = self.workers.lock().expect("registry lock");
        let entry = workers.iter_mut().find(|w| w.public_id() == public_id)?;
        entry.alive = true;
        entry.last_seen = Instant::now();
        Some(entry.doc())
    }

    /// `(public_id, addr)` of every worker currently believed alive.
    pub fn live(&self) -> Vec<(String, String)> {
        self.workers
            .lock()
            .expect("registry lock")
            .iter()
            .filter(|w| w.alive)
            .map(|w| (w.public_id(), w.addr.clone()))
            .collect()
    }

    /// Mark a worker dead (transport broke and a probe failed).
    pub fn mark_dead(&self, public_id: &str) {
        if let Some(entry) = self
            .workers
            .lock()
            .expect("registry lock")
            .iter_mut()
            .find(|w| w.public_id() == public_id)
        {
            entry.alive = false;
        }
    }

    /// Credit one completed lease to a worker.
    pub fn credit_lease(&self, public_id: &str) {
        if let Some(entry) = self
            .workers
            .lock()
            .expect("registry lock")
            .iter_mut()
            .find(|w| w.public_id() == public_id)
        {
            entry.leases_completed += 1;
            entry.last_seen = Instant::now();
        }
    }

    /// Record one failed lease attempt against a worker.
    pub fn record_failure(&self, public_id: &str) {
        if let Some(entry) = self
            .workers
            .lock()
            .expect("registry lock")
            .iter_mut()
            .find(|w| w.public_id() == public_id)
        {
            entry.failures += 1;
        }
    }

    /// Number of registered workers (any state).
    pub fn len(&self) -> usize {
        self.workers.lock().expect("registry lock").len()
    }

    /// Whether no workers are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The registry status document, refreshing each worker's `alive`
    /// flag through `probe` (`true` ⇒ reachable) first.
    ///
    /// Probes are network calls with multi-second timeouts, so they
    /// run on a snapshot *outside* the registry lock — a status poll
    /// against a blackholed worker must not stall the driver threads
    /// (credit/failure/mark-dead) of an active sweep.
    pub fn status_json(&self, probe: impl Fn(&str) -> bool) -> Value {
        let snapshot: Vec<(String, String)> = self
            .workers
            .lock()
            .expect("registry lock")
            .iter()
            .map(|w| (w.public_id(), w.addr.clone()))
            .collect();
        let probed: Vec<(String, bool)> = snapshot
            .into_iter()
            .map(|(id, addr)| (id, probe(&addr)))
            .collect();
        let mut workers = self.workers.lock().expect("registry lock");
        for (id, reachable) in probed {
            // Entries may have been (de)registered during the probe;
            // apply by id and skip the gone.
            if let Some(entry) = workers.iter_mut().find(|w| w.public_id() == id) {
                if reachable {
                    entry.last_seen = Instant::now();
                }
                entry.alive = reachable;
            }
        }
        let live = workers.iter().filter(|w| w.alive).count();
        json!({
            "workers": workers.iter().map(WorkerEntry::doc).collect::<Vec<_>>(),
            "registered": workers.len(),
            "live": live,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_is_idempotent_by_address_and_revives() {
        let registry = WorkerRegistry::new();
        let a = registry.register("127.0.0.1:1001");
        let b = registry.register("127.0.0.1:1002");
        assert_ne!(a["id"], b["id"]);
        assert_eq!(registry.len(), 2);
        let id = a["id"].as_str().unwrap().to_string();

        registry.mark_dead(&id);
        assert_eq!(registry.live().len(), 1);
        // Same address ⇒ same entry, revived.
        let again = registry.register("127.0.0.1:1001");
        assert_eq!(again["id"].as_str(), Some(id.as_str()));
        assert_eq!(registry.len(), 2);
        assert_eq!(registry.live().len(), 2);
    }

    #[test]
    fn heartbeat_deregister_and_counters() {
        let registry = WorkerRegistry::new();
        let doc = registry.register("127.0.0.1:2001");
        let id = doc["id"].as_str().unwrap().to_string();
        assert!(registry.heartbeat(&id).is_some());
        assert!(registry.heartbeat("w999").is_none());

        registry.credit_lease(&id);
        registry.credit_lease(&id);
        registry.record_failure(&id);
        let status = registry.status_json(|_| true);
        assert_eq!(status["live"].as_u64(), Some(1));
        assert_eq!(status["workers"][0]["leases_completed"].as_u64(), Some(2));
        assert_eq!(status["workers"][0]["failures"].as_u64(), Some(1));

        let gone = registry.deregister(&id).unwrap();
        assert_eq!(gone["id"].as_str(), Some(id.as_str()));
        assert!(registry.is_empty());
        assert!(registry.deregister(&id).is_none());
    }

    #[test]
    fn status_probe_refreshes_liveness_both_ways() {
        let registry = WorkerRegistry::new();
        registry.register("up:1");
        registry.register("down:2");
        let status = registry.status_json(|addr| addr.starts_with("up"));
        assert_eq!(status["live"].as_u64(), Some(1));
        // A dead-marked worker that answers a probe comes back.
        let status = registry.status_json(|_| true);
        assert_eq!(status["live"].as_u64(), Some(2));
    }
}
