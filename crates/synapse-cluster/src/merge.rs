//! Ordered merge of per-lease point streams into one campaign result.
//!
//! Leases complete out of order and may *replay* (a failed lease
//! re-runs on another worker after some of its points already
//! arrived), so the collector is keyed by global grid index: first
//! arrival wins, duplicates are dropped, and the merged observer event
//! fires under the same lock that advances the `done` counter — the
//! stream contract (`done` strictly monotone `1..=N`) holds no matter
//! how many worker streams interleave. At the end the slots read out
//! in grid order, which is what makes the assembled report
//! byte-identical to a single-process sweep.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::sync::Mutex;

use synapse_campaign::{CampaignError, PointEvent, PointResult};

struct Inner {
    slots: Vec<Option<Arc<PointResult>>>,
    done: usize,
    cache_hits: usize,
    simulated: usize,
}

/// Replay-tolerant, order-restoring point collector.
pub struct Collector {
    inner: Mutex<Inner>,
    /// Lock-free mirror of `Inner::done`, written under the lock —
    /// lets per-event hot paths ask "is the grid finished?" without
    /// contending with a merge in progress.
    done_mirror: AtomicUsize,
    total: usize,
}

impl Collector {
    /// A collector for a `total`-point grid.
    pub fn new(total: usize) -> Collector {
        Collector {
            inner: Mutex::new(Inner {
                slots: vec![None; total],
                done: 0,
                cache_hits: 0,
                simulated: 0,
            }),
            done_mirror: AtomicUsize::new(0),
            total,
        }
    }

    fn record_locked(
        &self,
        inner: &mut Inner,
        result: Arc<PointResult>,
        cached: bool,
        observer: &(dyn Fn(PointEvent) + Sync),
    ) -> bool {
        let index = result.point.index;
        if index >= self.total || inner.slots[index].is_some() {
            return false;
        }
        inner.slots[index] = Some(result.clone());
        inner.done += 1;
        if cached {
            inner.cache_hits += 1;
        } else {
            inner.simulated += 1;
        }
        let done = inner.done;
        self.done_mirror.store(done, Ordering::Release);
        // Emit under the lock so `done` is monotone in event order —
        // the same discipline CampaignEngine uses.
        observer(PointEvent::PointDone {
            result,
            cached,
            done,
            total: self.total,
        });
        true
    }

    /// Record one landed point by its global grid index, emitting the
    /// merged [`PointEvent::PointDone`] (with the global `done`
    /// counter) through `observer`. Duplicates — replayed leases — and
    /// out-of-range indices are ignored; returns whether the point was
    /// fresh.
    pub fn record(
        &self,
        result: Arc<PointResult>,
        cached: bool,
        observer: &(dyn Fn(PointEvent) + Sync),
    ) -> bool {
        let mut inner = self.inner.lock().expect("collector lock");
        self.record_locked(&mut inner, result, cached, observer)
    }

    /// Merge one batch frame of points under a single lock
    /// acquisition, with the exact semantics of point-by-point
    /// [`record`](Collector::record): first arrival wins, duplicates
    /// (including a whole replayed batch) and out-of-range indices
    /// are dropped, and each fresh point emits its merged
    /// [`PointEvent::PointDone`] with a monotone `done`. Returns how
    /// many points in the batch were fresh.
    pub fn record_batch(
        &self,
        points: Vec<(PointResult, bool)>,
        observer: &(dyn Fn(PointEvent) + Sync),
    ) -> usize {
        let mut inner = self.inner.lock().expect("collector lock");
        let mut fresh = 0;
        for (result, cached) in points {
            if self.record_locked(&mut inner, Arc::new(result), cached, observer) {
                fresh += 1;
            }
        }
        fresh
    }

    /// Whether every grid point has landed (lock-free read).
    pub fn is_complete(&self) -> bool {
        self.done_mirror.load(Ordering::Acquire) >= self.total
    }

    /// How many grid indices in `start..end` have *not* landed yet —
    /// the coordinator's straggler probe when deciding whether a
    /// lease's tail is worth splitting.
    pub fn missing_in(&self, start: usize, end: usize) -> usize {
        let inner = self.inner.lock().expect("collector lock");
        let end = end.min(self.total);
        if start >= end {
            return 0;
        }
        inner.slots[start..end]
            .iter()
            .filter(|slot| slot.is_none())
            .count()
    }

    /// Points collected so far.
    pub fn done(&self) -> usize {
        self.inner.lock().expect("collector lock").done
    }

    /// `(done, cache_hits, simulated)` counters.
    pub fn counts(&self) -> (usize, usize, usize) {
        let inner = self.inner.lock().expect("collector lock");
        (inner.done, inner.cache_hits, inner.simulated)
    }

    /// Read out every result in grid order. Errors if any slot never
    /// filled (the caller checks completion first; this is the
    /// defensive backstop).
    pub fn into_results(self) -> Result<Vec<PointResult>, CampaignError> {
        let inner = self.inner.into_inner().expect("collector lock");
        let mut results = Vec::with_capacity(inner.slots.len());
        for (index, slot) in inner.slots.into_iter().enumerate() {
            let shared = slot.ok_or_else(|| {
                CampaignError::Cluster(format!("grid index {index} was never executed"))
            })?;
            results.push(Arc::try_unwrap(shared).unwrap_or_else(|held| (*held).clone()));
        }
        Ok(results)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;
    use synapse_campaign::{expand, simulate_point, CampaignSpec};

    fn results() -> Vec<PointResult> {
        let spec = CampaignSpec::from_toml(
            r#"
            name = "merge"
            seed = 9
            machines = ["thinkie"]
            kernels = ["asm", "c"]

            [[workloads]]
            app = "gromacs"
            steps = [1000, 2000]
            "#,
        )
        .unwrap();
        expand(&spec)
            .iter()
            .map(|p| simulate_point(p).unwrap())
            .collect()
    }

    #[test]
    fn out_of_order_arrival_merges_back_into_grid_order() {
        let rs = results();
        let collector = Collector::new(rs.len());
        let events: StdMutex<Vec<usize>> = StdMutex::new(Vec::new());
        let observer = |e: PointEvent| {
            if let PointEvent::PointDone { done, total, .. } = e {
                assert_eq!(total, 4);
                events.lock().unwrap().push(done);
            }
        };
        // Arrive 3, 0, 2, 1.
        for idx in [3, 0, 2, 1] {
            assert!(collector.record(Arc::new(rs[idx].clone()), idx % 2 == 0, &observer));
        }
        assert_eq!(*events.lock().unwrap(), vec![1, 2, 3, 4], "monotone done");
        assert_eq!(collector.counts(), (4, 2, 2));
        let merged = collector.into_results().unwrap();
        assert_eq!(merged, rs, "grid order restored");
    }

    #[test]
    fn replayed_and_bogus_points_are_dropped() {
        let rs = results();
        let collector = Collector::new(rs.len());
        let observer = |_: PointEvent| {};
        assert!(collector.record(Arc::new(rs[1].clone()), false, &observer));
        // A replayed lease re-delivers the same point.
        assert!(!collector.record(Arc::new(rs[1].clone()), true, &observer));
        assert_eq!(
            collector.counts(),
            (1, 0, 1),
            "duplicate not double-counted"
        );
        // An index past the grid cannot corrupt the slots.
        let mut alien = rs[0].clone();
        alien.point.index = 99;
        assert!(!collector.record(Arc::new(alien), false, &observer));
        assert_eq!(collector.done(), 1);
    }

    #[test]
    fn batches_merge_with_single_point_semantics() {
        let rs = results();
        let collector = Collector::new(rs.len());
        let events: StdMutex<Vec<usize>> = StdMutex::new(Vec::new());
        let observer = |e: PointEvent| {
            if let PointEvent::PointDone { done, .. } = e {
                events.lock().unwrap().push(done);
            }
        };
        assert!(!collector.is_complete());
        assert_eq!(collector.missing_in(0, rs.len()), rs.len());

        let batch: Vec<(PointResult, bool)> = vec![(rs[2].clone(), false), (rs[0].clone(), true)];
        assert_eq!(collector.record_batch(batch.clone(), &observer), 2);
        assert_eq!(collector.missing_in(0, rs.len()), 2);

        // A whole replayed batch is dropped point by point.
        assert_eq!(collector.record_batch(batch, &observer), 0);
        assert_eq!(collector.counts(), (2, 1, 1), "replay not double-counted");

        // A mixed batch only lands the fresh points.
        let rest: Vec<(PointResult, bool)> = vec![
            (rs[0].clone(), false),
            (rs[1].clone(), false),
            (rs[3].clone(), false),
        ];
        assert_eq!(collector.record_batch(rest, &observer), 2);
        assert!(collector.is_complete());
        assert_eq!(collector.missing_in(0, rs.len()), 0);
        assert_eq!(*events.lock().unwrap(), vec![1, 2, 3, 4], "monotone done");
        assert_eq!(collector.into_results().unwrap(), rs, "grid order restored");
    }

    #[test]
    fn missing_in_clamps_and_counts_per_range() {
        let rs = results();
        let collector = Collector::new(rs.len());
        collector.record(Arc::new(rs[1].clone()), false, &|_| {});
        assert_eq!(collector.missing_in(0, 2), 1);
        assert_eq!(collector.missing_in(2, 4), 2);
        assert_eq!(collector.missing_in(2, 99), 2, "end clamps to total");
        assert_eq!(collector.missing_in(3, 3), 0);
        assert_eq!(collector.missing_in(7, 2), 0, "inverted range is empty");
    }

    #[test]
    fn incomplete_grids_refuse_to_read_out() {
        let rs = results();
        let collector = Collector::new(rs.len());
        collector.record(Arc::new(rs[0].clone()), false, &|_| {});
        let err = collector.into_results().unwrap_err();
        assert!(matches!(err, CampaignError::Cluster(_)), "{err}");
    }
}
