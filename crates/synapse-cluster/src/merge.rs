//! Ordered merge of per-lease point streams into one campaign result.
//!
//! Leases complete out of order and may *replay* (a failed lease
//! re-runs on another worker after some of its points already
//! arrived), so the collector is keyed by global grid index: first
//! arrival wins, duplicates are dropped, and the merged observer event
//! fires under the same lock that advances the `done` counter — the
//! stream contract (`done` strictly monotone `1..=N`) holds no matter
//! how many worker streams interleave. At the end the slots read out
//! in grid order, which is what makes the assembled report
//! byte-identical to a single-process sweep.

use std::sync::Arc;
use std::sync::Mutex;

use synapse_campaign::{CampaignError, PointEvent, PointResult};

struct Inner {
    slots: Vec<Option<Arc<PointResult>>>,
    done: usize,
    cache_hits: usize,
    simulated: usize,
}

/// Replay-tolerant, order-restoring point collector.
pub struct Collector {
    inner: Mutex<Inner>,
    total: usize,
}

impl Collector {
    /// A collector for a `total`-point grid.
    pub fn new(total: usize) -> Collector {
        Collector {
            inner: Mutex::new(Inner {
                slots: vec![None; total],
                done: 0,
                cache_hits: 0,
                simulated: 0,
            }),
            total,
        }
    }

    /// Record one landed point by its global grid index, emitting the
    /// merged [`PointEvent::PointDone`] (with the global `done`
    /// counter) through `observer`. Duplicates — replayed leases — and
    /// out-of-range indices are ignored; returns whether the point was
    /// fresh.
    pub fn record(
        &self,
        result: Arc<PointResult>,
        cached: bool,
        observer: &(dyn Fn(PointEvent) + Sync),
    ) -> bool {
        let index = result.point.index;
        if index >= self.total {
            return false;
        }
        let mut inner = self.inner.lock().expect("collector lock");
        if inner.slots[index].is_some() {
            return false;
        }
        inner.slots[index] = Some(result.clone());
        inner.done += 1;
        if cached {
            inner.cache_hits += 1;
        } else {
            inner.simulated += 1;
        }
        let done = inner.done;
        // Emit under the lock so `done` is monotone in event order —
        // the same discipline CampaignEngine uses.
        observer(PointEvent::PointDone {
            result,
            cached,
            done,
            total: self.total,
        });
        true
    }

    /// Points collected so far.
    pub fn done(&self) -> usize {
        self.inner.lock().expect("collector lock").done
    }

    /// `(done, cache_hits, simulated)` counters.
    pub fn counts(&self) -> (usize, usize, usize) {
        let inner = self.inner.lock().expect("collector lock");
        (inner.done, inner.cache_hits, inner.simulated)
    }

    /// Read out every result in grid order. Errors if any slot never
    /// filled (the caller checks completion first; this is the
    /// defensive backstop).
    pub fn into_results(self) -> Result<Vec<PointResult>, CampaignError> {
        let inner = self.inner.into_inner().expect("collector lock");
        let mut results = Vec::with_capacity(inner.slots.len());
        for (index, slot) in inner.slots.into_iter().enumerate() {
            let shared = slot.ok_or_else(|| {
                CampaignError::Cluster(format!("grid index {index} was never executed"))
            })?;
            results.push(Arc::try_unwrap(shared).unwrap_or_else(|held| (*held).clone()));
        }
        Ok(results)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;
    use synapse_campaign::{expand, simulate_point, CampaignSpec};

    fn results() -> Vec<PointResult> {
        let spec = CampaignSpec::from_toml(
            r#"
            name = "merge"
            seed = 9
            machines = ["thinkie"]
            kernels = ["asm", "c"]

            [[workloads]]
            app = "gromacs"
            steps = [1000, 2000]
            "#,
        )
        .unwrap();
        expand(&spec)
            .iter()
            .map(|p| simulate_point(p).unwrap())
            .collect()
    }

    #[test]
    fn out_of_order_arrival_merges_back_into_grid_order() {
        let rs = results();
        let collector = Collector::new(rs.len());
        let events: StdMutex<Vec<usize>> = StdMutex::new(Vec::new());
        let observer = |e: PointEvent| {
            if let PointEvent::PointDone { done, total, .. } = e {
                assert_eq!(total, 4);
                events.lock().unwrap().push(done);
            }
        };
        // Arrive 3, 0, 2, 1.
        for idx in [3, 0, 2, 1] {
            assert!(collector.record(Arc::new(rs[idx].clone()), idx % 2 == 0, &observer));
        }
        assert_eq!(*events.lock().unwrap(), vec![1, 2, 3, 4], "monotone done");
        assert_eq!(collector.counts(), (4, 2, 2));
        let merged = collector.into_results().unwrap();
        assert_eq!(merged, rs, "grid order restored");
    }

    #[test]
    fn replayed_and_bogus_points_are_dropped() {
        let rs = results();
        let collector = Collector::new(rs.len());
        let observer = |_: PointEvent| {};
        assert!(collector.record(Arc::new(rs[1].clone()), false, &observer));
        // A replayed lease re-delivers the same point.
        assert!(!collector.record(Arc::new(rs[1].clone()), true, &observer));
        assert_eq!(
            collector.counts(),
            (1, 0, 1),
            "duplicate not double-counted"
        );
        // An index past the grid cannot corrupt the slots.
        let mut alien = rs[0].clone();
        alien.point.index = 99;
        assert!(!collector.record(Arc::new(alien), false, &observer));
        assert_eq!(collector.done(), 1);
    }

    #[test]
    fn incomplete_grids_refuse_to_read_out() {
        let rs = results();
        let collector = Collector::new(rs.len());
        collector.record(Arc::new(rs[0].clone()), false, &|_| {});
        let err = collector.into_results().unwrap_err();
        assert!(matches!(err, CampaignError::Cluster(_)), "{err}");
    }
}
