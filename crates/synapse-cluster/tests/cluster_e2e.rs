//! End-to-end cluster tests: real coordinator + worker servers on
//! ephemeral ports, leases over real sockets, worker death mid-sweep.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use serde_json::Value;
use synapse_cluster::{ClusterConfig, Coordinator};
use synapse_server::{Client, Server, ServerConfig, ServerHandle};

/// Boot a plain worker server; returns its address, client, handle.
fn boot_worker(
    config: ServerConfig,
) -> (String, Client, ServerHandle, std::thread::JoinHandle<()>) {
    let mut config = config;
    config.addr = "127.0.0.1:0".into();
    let server = Server::bind(config).expect("bind worker");
    let handle = server.handle().expect("worker handle");
    let addr = server.local_addr().expect("worker addr").to_string();
    let join = std::thread::spawn(move || server.run().expect("worker run"));
    (addr.clone(), Client::new(addr), handle, join)
}

/// Boot a coordinator with the given workers pre-registered.
fn boot_coordinator(
    worker_addrs: &[&str],
    config: ServerConfig,
) -> (Client, ServerHandle, std::thread::JoinHandle<()>) {
    let coordinator = Arc::new(Coordinator::new(ClusterConfig::default()));
    for addr in worker_addrs {
        coordinator.registry().register(addr);
    }
    let mut config = config;
    config.addr = "127.0.0.1:0".into();
    let server = Server::bind(config)
        .expect("bind coordinator")
        .with_cluster(coordinator);
    let handle = server.handle().expect("coordinator handle");
    let addr = server.local_addr().expect("coordinator addr").to_string();
    let join = std::thread::spawn(move || server.run().expect("coordinator run"));
    (Client::new(addr), handle, join)
}

/// 16 points: partitions across 8 leases on a 2-worker cluster.
fn medium_spec() -> &'static str {
    r#"
    name = "cluster-medium"
    seed = 27
    machines = ["thinkie", "comet"]
    kernels = ["asm", "c"]
    modes = ["openmp", "mpi"]

    [[workloads]]
    app = "gromacs"
    steps = [10000, 50000]
    "#
}

/// A wide grid that takes a while on single-threaded workers — long
/// enough to kill a worker mid-sweep.
fn wide_spec() -> &'static str {
    r#"
    name = "cluster-wide"
    seed = 31
    machines = ["thinkie", "stampede", "archer", "supermic", "comet", "titan"]
    kernels = ["asm", "c", "spin"]
    modes = ["openmp", "mpi"]
    threads = [1, 4]

    [[workloads]]
    app = "gromacs"
    steps = [10000, 50000, 100000]

    [[workloads]]
    app = "amber"
    steps = [10000, 50000, 100000]
    "#
}

fn await_terminal(client: &Client, id: &str) -> Value {
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        let status = client.status(id).expect("status");
        let state = status["status"]
            .as_str()
            .expect("status string")
            .to_string();
        if ["completed", "cancelled", "failed"].contains(&state.as_str()) {
            return status;
        }
        assert!(Instant::now() < deadline, "job {id} stuck in {state}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Submit a spec plainly (no cluster) and return its compact report
/// text — the single-process baseline for byte-stability checks —
/// plus its final `/aggregates` document (the live-view baseline).
fn single_process_report(spec: &str) -> (String, Value) {
    let (_, client, handle, join) = boot_worker(ServerConfig::default());
    let id = client.submit(spec).unwrap()["id"]
        .as_str()
        .unwrap()
        .to_string();
    let summary = client.watch(&id, |_| true).unwrap();
    assert_eq!(summary["event"].as_str(), Some("completed"));
    let report = client.report(&id).unwrap();
    let aggregates = client.aggregates(&id, None, None).unwrap();
    handle.shutdown();
    join.join().unwrap();
    (serde_json::to_string(&report).unwrap(), aggregates)
}

/// Assert two aggregate stats objects agree: counts and extrema
/// exactly, mean and sketch quantiles within the sketch's relative
/// error (merging per-worker sketches regroups f64 additions and must
/// not change what a dashboard reads).
fn assert_stats_close(cluster: &Value, local: &Value, what: &str) {
    assert_eq!(cluster["n"], local["n"], "{what}: count");
    if cluster["n"].as_u64() == Some(0) {
        return;
    }
    for key in ["min", "max"] {
        assert_eq!(cluster[key], local[key], "{what}: {key}");
    }
    for key in ["mean", "p50", "p95", "p99"] {
        let c = cluster[key].as_f64().unwrap();
        let l = local[key].as_f64().unwrap();
        let tolerance = 0.02 * l.abs().max(1e-9);
        assert!(
            (c - l).abs() <= tolerance,
            "{what}: {key} diverged: cluster {c} vs local {l}"
        );
    }
}

#[test]
fn distributed_run_merges_streams_and_reports_byte_stably() {
    let (addr1, _c1, h1, j1) = boot_worker(ServerConfig::default());
    let (addr2, _c2, h2, j2) = boot_worker(ServerConfig::default());
    let (client, handle, join) = boot_coordinator(&[&addr1, &addr2], ServerConfig::default());

    let reply = client.submit_distributed(medium_spec()).unwrap();
    assert_eq!(reply["distributed"].as_bool(), Some(true));
    assert_eq!(reply["points"].as_u64(), Some(16));
    let id = reply["id"].as_str().unwrap().to_string();

    // The merged stream has the same contract as a local sweep: one
    // point event per grid index, `done` monotone 1..=N, one terminal.
    let lines = Mutex::new(Vec::<Value>::new());
    let summary = client
        .watch(&id, |line| {
            lines
                .lock()
                .unwrap()
                .push(serde_json::from_str(line).unwrap());
            true
        })
        .unwrap();
    assert_eq!(summary["event"].as_str(), Some("completed"));
    assert_eq!(summary["points"].as_u64(), Some(16));
    let lines = lines.into_inner().unwrap();
    let points: Vec<&Value> = lines
        .iter()
        .filter(|l| l["event"].as_str() == Some("point"))
        .collect();
    assert_eq!(points.len(), 16);
    let dones: Vec<u64> = points.iter().map(|p| p["done"].as_u64().unwrap()).collect();
    assert_eq!(dones, (1..=16).collect::<Vec<u64>>(), "globally monotone");
    let mut indices: Vec<u64> = points
        .iter()
        .map(|p| p["index"].as_u64().unwrap())
        .collect();
    indices.sort_unstable();
    assert_eq!(indices, (0..16).collect::<Vec<u64>>(), "each index once");

    // Byte-stable merge: the distributed report equals the
    // single-process baseline exactly.
    let merged = serde_json::to_string(&client.report(&id).unwrap()).unwrap();
    let (baseline_report, baseline_aggregates) = single_process_report(medium_spec());
    assert_eq!(merged, baseline_report);

    // The live aggregate view assembled from worker-shipped sketch
    // digests agrees with the single-process one: same coverage, same
    // slice keys, stats within sketch error.
    let aggregates = client.aggregates(&id, None, None).unwrap();
    assert_eq!(aggregates["points"].as_u64(), Some(16));
    assert_stats_close(
        &aggregates["overall"]["metrics"]["error_pct"],
        &baseline_aggregates["overall"]["metrics"]["error_pct"],
        "overall error_pct",
    );
    let slice_key = |s: &Value| {
        (
            s["axis"].as_str().unwrap().to_string(),
            s["value"].as_str().unwrap().to_string(),
        )
    };
    let cluster_slices = aggregates["slices"].as_array().unwrap();
    let local_slices = baseline_aggregates["slices"].as_array().unwrap();
    assert_eq!(
        cluster_slices.iter().map(slice_key).collect::<Vec<_>>(),
        local_slices.iter().map(slice_key).collect::<Vec<_>>(),
        "identical slice keys"
    );
    for (c, l) in cluster_slices.iter().zip(local_slices) {
        let (axis, value) = slice_key(c);
        for metric in ["error_pct", "tx"] {
            assert_stats_close(
                &c["metrics"][metric],
                &l["metrics"][metric],
                &format!("{axis}={value} {metric}"),
            );
        }
    }

    // Both workers carried leases.
    let status = client.cluster_status().unwrap();
    assert_eq!(status["live"].as_u64(), Some(2));
    let carried: u64 = status["workers"]
        .as_array()
        .unwrap()
        .iter()
        .map(|w| w["leases_completed"].as_u64().unwrap())
        .sum();
    assert_eq!(carried, 8, "all 8 leases ran remotely: {status:?}");

    // The coordinator's /metrics scrape carries every subsystem the
    // process touched: cluster lease lifecycle (and the liveness
    // probes the status call above just ran), the serve front, and
    // the store's lock counters behind the shared cache.
    let metrics = client.metrics().unwrap();
    let value = |name: &str| -> f64 {
        metrics
            .lines()
            .filter_map(|l| l.split_once(' '))
            .find(|(n, _)| *n == name)
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or_else(|| panic!("series {name} missing from coordinator scrape"))
    };
    assert!(value("synapse_cluster_leases_assigned_total") >= 8.0);
    assert!(value("synapse_cluster_leases_completed_total") >= 8.0);
    assert!(value("synapse_cluster_probe_seconds_count") >= 1.0);
    // Lease streams are batched: every point of this run arrived
    // inside a batch frame (one per lease at the default cap).
    assert!(value("synapse_cluster_batch_points_count") >= 8.0);
    assert!(value("synapse_cluster_batch_points_sum") >= 16.0);
    assert!(value("synapse_cluster_leases_split_total") >= 0.0);
    // Remotely-run leases shipped aggregate digests home and the
    // coordinator folded them into the campaign's live view. Not all 8
    // necessarily merge: a lease whose stream is still open when the
    // grid completes hangs up before its terminal event (and the
    // catch-up records its points directly), so the floor is most-of,
    // not all-of.
    assert!(
        value("synapse_cluster_sketch_merges_total") >= 4.0,
        "worker sketch digests merged: {metrics}"
    );
    assert!(value("synapse_server_connections_accepted_total") >= 1.0);
    assert!(value("synapse_store_lock_acquisitions_total") >= 0.0);
    assert!(
        metrics.contains("synapse_cluster_worker_points_per_sec{worker="),
        "per-worker throughput gauge missing"
    );

    handle.shutdown();
    join.join().unwrap();
    h1.shutdown();
    j1.join().unwrap();
    h2.shutdown();
    j2.join().unwrap();
}

#[test]
fn worker_death_mid_sweep_reassigns_leases_and_completes() {
    // Single-threaded workers make the wide grid slow enough to kill
    // one mid-sweep.
    let worker_config = || ServerConfig {
        job_workers: 1,
        ..Default::default()
    };
    let (addr1, _c1, h1, j1) = boot_worker(worker_config());
    let (addr2, _c2, h2, j2) = boot_worker(worker_config());
    let (client, handle, join) = boot_coordinator(&[&addr1, &addr2], ServerConfig::default());

    let reply = client.submit_distributed(wide_spec()).unwrap();
    let total = reply["points"].as_u64().unwrap();
    assert_eq!(total, 6 * 3 * 2 * 2 * 6);
    let id = reply["id"].as_str().unwrap().to_string();

    // Wait until the sweep is visibly running, then kill worker 2.
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let status = client.status(&id).unwrap();
        if status["done"].as_u64().unwrap() >= 8 {
            break;
        }
        assert!(Instant::now() < deadline, "distributed sweep never started");
        std::thread::sleep(Duration::from_millis(10));
    }
    h2.shutdown();
    j2.join().unwrap();

    // The grid still completes: worker 2's leases reassign to worker 1
    // (or the coordinator's local fallback).
    let status = await_terminal(&client, &id);
    assert_eq!(status["status"].as_str(), Some("completed"), "{status:?}");
    assert_eq!(status["done"].as_u64(), Some(total));

    // The merged report is still byte-identical to a single-process
    // run — lease replay and reassignment leave no trace.
    let merged = serde_json::to_string(&client.report(&id).unwrap()).unwrap();
    assert_eq!(merged, single_process_report(wide_spec()).0);

    // The registry knows worker 2 is gone.
    let cluster = client.cluster_status().unwrap();
    assert_eq!(cluster["live"].as_u64(), Some(1), "{cluster:?}");

    handle.shutdown();
    join.join().unwrap();
    h1.shutdown();
    j1.join().unwrap();
}

#[test]
fn coordinator_without_workers_falls_back_to_local_execution() {
    let (client, handle, join) = boot_coordinator(&[], ServerConfig::default());
    let reply = client.submit_distributed(medium_spec()).unwrap();
    let id = reply["id"].as_str().unwrap().to_string();
    let summary = client.watch(&id, |_| true).unwrap();
    assert_eq!(summary["event"].as_str(), Some("completed"));
    assert_eq!(summary["points"].as_u64(), Some(16));
    let merged = serde_json::to_string(&client.report(&id).unwrap()).unwrap();
    assert_eq!(merged, single_process_report(medium_spec()).0);
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn distributed_jobs_cancel_cooperatively() {
    let worker_config = || ServerConfig {
        job_workers: 1,
        ..Default::default()
    };
    let (addr1, _c1, h1, j1) = boot_worker(worker_config());
    let (client, handle, join) = boot_coordinator(&[&addr1], ServerConfig::default());

    let reply = client.submit_distributed(wide_spec()).unwrap();
    let total = reply["points"].as_u64().unwrap();
    let id = reply["id"].as_str().unwrap().to_string();
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        if client.status(&id).unwrap()["done"].as_u64().unwrap() >= 1 {
            break;
        }
        assert!(Instant::now() < deadline, "no point ever landed");
        std::thread::sleep(Duration::from_millis(10));
    }
    client.cancel(&id).unwrap();
    let status = await_terminal(&client, &id);
    assert_eq!(status["status"].as_str(), Some("cancelled"));
    assert!(status["done"].as_u64().unwrap() < total);
    // The worker's own lease jobs settle too (nothing keeps sweeping).
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let jobs = Client::new(addr1.clone()).list().unwrap();
        let busy = jobs["campaigns"]
            .as_array()
            .unwrap()
            .iter()
            .any(|j| matches!(j["status"].as_str(), Some("queued") | Some("running")));
        if !busy {
            break;
        }
        assert!(Instant::now() < deadline, "worker still sweeping: {jobs:?}");
        std::thread::sleep(Duration::from_millis(50));
    }

    handle.shutdown();
    join.join().unwrap();
    h1.shutdown();
    j1.join().unwrap();
}

#[test]
fn workers_sharing_one_cache_dir_assemble_the_full_grid() {
    // Two workers persist into ONE lock-aware sharded directory; after
    // a distributed sweep the union holds every point, which a third
    // process then serves entirely from cache.
    let dir = std::env::temp_dir().join(format!("synapse-cluster-shared-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let shared = || ServerConfig {
        cache_dir: Some(dir.clone()),
        ..Default::default()
    };
    let (addr1, c1, h1, j1) = boot_worker(shared());
    let (addr2, _c2, h2, j2) = boot_worker(shared());
    let (client, handle, join) = boot_coordinator(&[&addr1, &addr2], ServerConfig::default());

    let id = client.submit_distributed(medium_spec()).unwrap()["id"]
        .as_str()
        .unwrap()
        .to_string();
    let summary = client.watch(&id, |_| true).unwrap();
    assert_eq!(summary["event"].as_str(), Some("completed"));
    assert_eq!(summary["cache_hit_rate"].as_f64(), Some(0.0), "cold run");

    // Lock-aware persistence is observable through the worker's store
    // stats.
    let stats = c1.store_stats().unwrap();
    assert!(
        stats["lock_acquisitions"].as_u64().unwrap() >= 1,
        "{stats:?}"
    );

    h1.shutdown();
    j1.join().unwrap();
    h2.shutdown();
    j2.join().unwrap();
    handle.shutdown();
    join.join().unwrap();

    // A fresh process over the same directory sees the whole grid.
    let (_, c3, h3, j3) = boot_worker(shared());
    let id = c3.submit(medium_spec()).unwrap()["id"]
        .as_str()
        .unwrap()
        .to_string();
    let summary = c3.watch(&id, |_| true).unwrap();
    assert_eq!(
        summary["cache_hit_rate"].as_f64(),
        Some(1.0),
        "no worker's results were lost to the shared directory: {summary:?}"
    );
    h3.shutdown();
    j3.join().unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn frozen_worker_stream_fails_fast_and_reassigns() {
    use std::io::{BufReader, Write};
    use std::sync::atomic::{AtomicBool, Ordering};

    // A fake worker that accepts a lease, establishes its event
    // stream, then freezes — no events, no heartbeats, socket held
    // open. From the coordinator's side this is a hung or partitioned
    // worker, the case a flat 60 s socket timeout used to sit on.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let frozen = Arc::new(AtomicBool::new(false));
    let fake = {
        let frozen = frozen.clone();
        std::thread::spawn(move || {
            let mut held_open = Vec::new();
            for conn in listener.incoming() {
                let Ok(stream) = conn else { break };
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let Ok(request) = synapse_server::http::read_request(&mut reader) else {
                    continue;
                };
                let mut out = stream;
                match (request.method.as_str(), request.path()) {
                    // Healthy until the freeze: registration and the
                    // first post-failure probe must see it alive or
                    // dead respectively.
                    ("GET", "/healthz") => {
                        if frozen.load(Ordering::SeqCst) {
                            break; // stop answering entirely: worker is gone
                        }
                        let _ = synapse_server::http::write_json(
                            &mut out,
                            200,
                            "OK",
                            &serde_json::json!({"status": "ok"}),
                        );
                    }
                    ("POST", "/leases") => {
                        let _ = synapse_server::http::write_json(
                            &mut out,
                            202,
                            "Accepted",
                            &serde_json::json!({"id": "j1", "status": "queued"}),
                        );
                    }
                    (_, path) if path.ends_with("/events") => {
                        // Stream head + one started event, then
                        // silence with the socket held open.
                        let _ = out.write_all(
                            b"HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\n\
                              Transfer-Encoding: chunked\r\nConnection: close\r\n\r\n\
                              14\r\n{\"event\":\"started\"}\n\r\n",
                        );
                        frozen.store(true, Ordering::SeqCst);
                        held_open.push(out);
                    }
                    _ => {
                        let _ = synapse_server::http::write_json(
                            &mut out,
                            200,
                            "OK",
                            &serde_json::json!({}),
                        );
                    }
                }
            }
        })
    };

    // A coordinator with an aggressive silence threshold (the default
    // is 2× the 10 s heartbeat interval; tests cannot wait that long).
    let coordinator = Arc::new(Coordinator::new(ClusterConfig {
        stream_silence: Duration::from_millis(400),
        ..Default::default()
    }));
    coordinator.registry().register(&addr);
    let config = ServerConfig {
        addr: "127.0.0.1:0".into(),
        ..Default::default()
    };
    let server = Server::bind(config)
        .expect("bind coordinator")
        .with_cluster(coordinator);
    let handle = server.handle().expect("handle");
    let coord_addr = server.local_addr().expect("addr").to_string();
    let join = std::thread::spawn(move || server.run().expect("run"));
    let client = Client::new(coord_addr);

    // The distributed job must complete despite the frozen worker: the
    // stalled stream surfaces as a retriable disconnect well inside
    // the old 60 s socket timeout, the worker probe fails, and the
    // lease reassigns to the coordinator's local fallback.
    let started = Instant::now();
    let reply = client.submit_distributed(medium_spec()).unwrap();
    let id = reply["id"].as_str().unwrap().to_string();
    let status = await_terminal(&client, &id);
    assert_eq!(status["status"].as_str(), Some("completed"), "{status:?}");
    assert_eq!(status["done"].as_u64(), Some(16));
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "freeze detected promptly, not after a flat socket timeout: {:?}",
        started.elapsed()
    );

    // The merged report is still byte-identical to a single-process
    // run — the aborted lease left no trace.
    let merged = serde_json::to_string(&client.report(&id).unwrap()).unwrap();
    assert_eq!(merged, single_process_report(medium_spec()).0);

    // The registry observed the death.
    let cluster = client.cluster_status().unwrap();
    assert_eq!(cluster["live"].as_u64(), Some(0), "{cluster:?}");

    handle.shutdown();
    join.join().unwrap();
    // The fake's accept loop ends when its listener errors (process
    // teardown) or the frozen healthz probe breaks it out.
    drop(fake);
}

#[test]
fn straggling_lease_tail_splits_and_fast_workers_set_the_makespan() {
    use std::collections::HashMap;
    use std::io::{BufReader, Write};
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

    // 64 points across 2 workers: 8 main leases of ~8 points (plus a
    // 1-point probe per unmeasured worker) — big enough tails for the
    // MIN_SPLIT_POINTS=4 splitting floor.
    let spec_text = r#"
    name = "cluster-straggler"
    seed = 41
    machines = ["thinkie", "comet", "stampede", "titan"]
    kernels = ["asm", "c"]
    modes = ["openmp", "mpi"]

    [[workloads]]
    app = "gromacs"
    steps = [10000, 20000, 50000, 100000]
    "#;

    fn chunk(line: &str) -> Vec<u8> {
        let payload = format!("{line}\n");
        format!("{:x}\r\n{payload}\r\n", payload.len()).into_bytes()
    }

    // A fake worker that serves CORRECT lease results but crawls: on
    // any multi-point lease it sleeps ~3 s before each point, so a
    // full 8-point lease would take ~24 s on its own. Probe leases
    // (1 point) run at full speed so this worker measures healthy and
    // promptly claims a big main lease. Thread-per-connection keeps
    // liveness probes answered while a lease stream crawls.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let cancelled = Arc::new(AtomicBool::new(false));
    let leases: Arc<Mutex<HashMap<String, Vec<synapse_campaign::ScenarioPoint>>>> =
        Arc::new(Mutex::new(HashMap::new()));
    let next_id = Arc::new(AtomicUsize::new(0));
    let fake = {
        let (cancelled, leases, next_id) = (cancelled.clone(), leases.clone(), next_id.clone());
        std::thread::spawn(move || {
            for conn in listener.incoming() {
                let Ok(stream) = conn else { break };
                let (cancelled, leases, next_id) =
                    (cancelled.clone(), leases.clone(), next_id.clone());
                std::thread::spawn(move || {
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    let Ok(request) = synapse_server::http::read_request(&mut reader) else {
                        return;
                    };
                    let mut out = stream;
                    let path = request.path().to_string();
                    match (request.method.as_str(), path.as_str()) {
                        ("POST", "/leases") => {
                            let body = String::from_utf8(request.body.clone()).expect("utf8 body");
                            let lease: synapse_server::LeaseRequest =
                                serde_json::from_str(&body).expect("lease body");
                            let slice = synapse_campaign::expand(&lease.spec)
                                [lease.start..lease.end]
                                .to_vec();
                            let id = format!("s{}", next_id.fetch_add(1, Ordering::SeqCst) + 1);
                            leases.lock().unwrap().insert(id.clone(), slice);
                            let _ = synapse_server::http::write_json(
                                &mut out,
                                202,
                                "Accepted",
                                &serde_json::json!({"id": id, "status": "queued"}),
                            );
                        }
                        ("GET", p) if p.contains("/events") => {
                            let id = p.split('/').nth(2).unwrap_or_default().to_string();
                            let slice =
                                leases.lock().unwrap().get(&id).cloned().unwrap_or_default();
                            let _ = out.write_all(
                                b"HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\n\
                                  Transfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
                            );
                            let _ = out.write_all(&chunk("{\"event\":\"started\"}"));
                            let slow = slice.len() > 1;
                            'points: for point in &slice {
                                if slow {
                                    for _ in 0..30 {
                                        if cancelled.load(Ordering::SeqCst) {
                                            break 'points;
                                        }
                                        std::thread::sleep(Duration::from_millis(100));
                                    }
                                }
                                let result = synapse_campaign::simulate_point(point)
                                    .expect("simulate point");
                                let result = serde_json::to_value(&result).unwrap();
                                let line = serde_json::to_string(&serde_json::json!({
                                    "event": "point",
                                    "index": result["point"]["index"],
                                    "result": result,
                                    "cached": false,
                                }))
                                .unwrap();
                                if out.write_all(&chunk(&line)).is_err() {
                                    break;
                                }
                            }
                            let done =
                                format!("{{\"event\":\"completed\",\"points\":{}}}", slice.len());
                            let _ = out.write_all(&chunk(&done));
                            let _ = out.write_all(b"0\r\n\r\n");
                        }
                        ("DELETE", p) if p.starts_with("/campaigns/") => {
                            cancelled.store(true, Ordering::SeqCst);
                            let _ = synapse_server::http::write_json(
                                &mut out,
                                200,
                                "OK",
                                &serde_json::json!({"status": "cancelled"}),
                            );
                        }
                        _ => {
                            let _ = synapse_server::http::write_json(
                                &mut out,
                                200,
                                "OK",
                                &serde_json::json!({"status": "ok"}),
                            );
                        }
                    }
                });
            }
        })
    };

    let (fast_addr, _fc, fh, fj) = boot_worker(ServerConfig::default());
    let (client, handle, join) = boot_coordinator(&[&fast_addr, &addr], ServerConfig::default());

    let started = Instant::now();
    let reply = client.submit_distributed(spec_text).unwrap();
    assert_eq!(reply["points"].as_u64(), Some(64));
    let id = reply["id"].as_str().unwrap().to_string();
    let status = await_terminal(&client, &id);
    assert_eq!(status["status"].as_str(), Some("completed"), "{status:?}");
    assert_eq!(status["done"].as_u64(), Some(64));

    // The makespan is set by the fast worker, not the straggler: an
    // idle driver re-offered the crawling lease's tail as a new
    // (overlapping) lease, swept it, and the coordinator hung up on
    // the straggler the moment the grid was point-complete. Unsplit,
    // the straggler's ~8-point lease alone needs ~24 s.
    assert!(
        started.elapsed() < Duration::from_secs(20),
        "straggler tail was not split: {:?}",
        started.elapsed()
    );
    assert!(
        cancelled.load(Ordering::SeqCst),
        "the straggler's sweep was never cancelled, so its lease ran to the end"
    );

    // Speculation left no trace in the merged result.
    let merged = serde_json::to_string(&client.report(&id).unwrap()).unwrap();
    assert_eq!(merged, single_process_report(spec_text).0);

    // The split shows up on the coordinator's own scrape.
    let metrics = client.metrics().unwrap();
    let split: f64 = metrics
        .lines()
        .filter_map(|l| l.split_once(' '))
        .find(|(n, _)| *n == "synapse_cluster_leases_split_total")
        .and_then(|(_, v)| v.parse().ok())
        .expect("split counter missing from scrape");
    assert!(split >= 1.0, "no lease was ever split: {metrics}");

    handle.shutdown();
    join.join().unwrap();
    fh.shutdown();
    fj.join().unwrap();
    drop(fake);
}

#[test]
fn registry_endpoints_roundtrip_over_http() {
    let (worker_addr, _wc, wh, wj) = boot_worker(ServerConfig::default());
    let (client, handle, join) = boot_coordinator(&[], ServerConfig::default());

    // Register → status sees a live worker (probed for real).
    let doc = client.register_worker(&worker_addr).unwrap();
    let id = doc["id"].as_str().unwrap().to_string();
    assert_eq!(doc["alive"].as_bool(), Some(true));
    let status = client.cluster_status().unwrap();
    assert_eq!(status["registered"].as_u64(), Some(1));
    assert_eq!(status["live"].as_u64(), Some(1));

    // Heartbeat works; unknown ids 404.
    assert!(client.heartbeat_worker(&id).is_ok());
    let err = client.heartbeat_worker("w999").unwrap_err();
    assert!(err.to_string().contains("404"), "{err}");

    // Re-registering the same address is idempotent.
    let again = client.register_worker(&worker_addr).unwrap();
    assert_eq!(again["id"].as_str(), Some(id.as_str()));
    assert_eq!(
        client.cluster_status().unwrap()["registered"].as_u64(),
        Some(1)
    );

    // Kill the worker: the next status probe reports it dead.
    wh.shutdown();
    wj.join().unwrap();
    let status = client.cluster_status().unwrap();
    assert_eq!(status["live"].as_u64(), Some(0), "{status:?}");

    // Deregister removes it.
    client.deregister_worker(&id).unwrap();
    assert_eq!(
        client.cluster_status().unwrap()["registered"].as_u64(),
        Some(0)
    );
    let err = client.deregister_worker(&id).unwrap_err();
    assert!(err.to_string().contains("404"), "{err}");

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn cluster_recorded_trace_replays_to_the_single_process_report() {
    use synapse_trace::{ReplayMode, Trace};
    let (addr1, _c1, h1, j1) = boot_worker(ServerConfig::default());
    let (addr2, _c2, h2, j2) = boot_worker(ServerConfig::default());
    let (client, handle, join) = boot_coordinator(&[&addr1, &addr2], ServerConfig::default());

    let ack = client.submit_recorded(medium_spec(), true).unwrap();
    assert_eq!(ack["distributed"].as_bool(), Some(true));
    let id = ack["id"].as_str().unwrap().to_string();
    let trace_id = ack["trace"]
        .as_str()
        .expect("ack carries trace id")
        .to_string();
    await_terminal(&client, &id);

    // Fetch the sealed trace (small window between terminal status
    // and the queue worker rendering the document).
    let deadline = Instant::now() + Duration::from_secs(30);
    let text = loop {
        match client.trace(&id) {
            Ok(text) => break text,
            Err(e) => assert!(Instant::now() < deadline, "trace never sealed: {e}"),
        }
        std::thread::sleep(Duration::from_millis(10));
    };

    let trace = Trace::parse(&text).unwrap();
    assert_eq!(trace.header.trace_id, trace_id);
    let summary = trace.verify(ReplayMode::Strict).unwrap();
    assert!(summary.is_clean());
    assert_eq!(summary.points, 16);

    // The lease lifecycle is in the trace: every lease was recorded
    // as assigned and completed, attributed to a worker address.
    let leases: Vec<&str> = text
        .lines()
        .filter(|l| l.starts_with("{\"kind\":\"lease\""))
        .collect();
    let assigned = leases
        .iter()
        .filter(|l| l.contains("\"phase\":\"assigned\""))
        .count();
    let completed = leases
        .iter()
        .filter(|l| l.contains("\"phase\":\"completed\""))
        .count();
    assert!(assigned >= 8, "expected >= 8 assigned leases: {assigned}");
    assert!(
        completed >= 8,
        "expected >= 8 completed leases: {completed}"
    );
    let worker_ids: std::collections::BTreeSet<String> = leases
        .iter()
        .filter_map(|l| {
            serde_json::from_str::<Value>(l)
                .ok()
                .and_then(|v| v["worker"].as_str().map(str::to_string))
        })
        .collect();
    assert!(
        worker_ids.len() >= 2,
        "lease annotations attribute both workers: {worker_ids:?}"
    );

    // Replaying the cluster-recorded trace reconstructs the exact
    // bytes of the single-process report — the acceptance gate.
    let pretty = trace
        .reconstruct_report()
        .unwrap()
        .to_json_pretty()
        .unwrap();
    let reconstructed: Value = serde_json::from_str(&pretty).unwrap();
    assert_eq!(
        serde_json::to_string(&reconstructed).unwrap(),
        single_process_report(medium_spec()).0
    );

    handle.shutdown();
    join.join().unwrap();
    h1.shutdown();
    j1.join().unwrap();
    h2.shutdown();
    j2.join().unwrap();
}
