//! Minimal vendored substitute for `criterion`.
//!
//! The real statistical harness is unavailable offline; this stub
//! keeps the bench targets compiling and runnable. Each
//! `bench_function` executes its routine a small fixed number of
//! iterations and prints the mean wall-clock time — enough to spot
//! order-of-magnitude regressions by eye, with none of criterion's
//! statistics.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Iterations per benchmark routine (kept tiny so `cargo bench`
/// completes in seconds).
const ITERS: u32 = 3;

/// Opaque-to-the-optimizer pass-through, as `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Measurement driver handed to benchmark closures.
pub struct Bencher {
    iters_run: u64,
    total: Duration,
}

impl Bencher {
    /// Time a routine (`ITERS` iterations, mean reported).
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        for _ in 0..ITERS {
            let start = Instant::now();
            black_box(routine());
            self.total += start.elapsed();
            self.iters_run += 1;
        }
    }
}

/// Benchmark identifier: `name/parameter`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id combining a function name and a parameter value.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// An id from a parameter value only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(format!("{parameter}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Throughput annotation (accepted, not analysed).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Top-level benchmark manager.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Run a single benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(None, &BenchmarkId::from(name), f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
        }
    }
}

/// A group of related benchmarks. Configuration setters are accepted
/// for API compatibility and ignored.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Ignored (stub).
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Ignored (stub).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Ignored (stub).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Ignored (stub).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(Some(&self.name), &id.into(), f);
        self
    }

    /// Close the group (no-op in the stub).
    pub fn finish(self) {}
}

fn run_one<F>(group: Option<&str>, id: &BenchmarkId, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        iters_run: 0,
        total: Duration::ZERO,
    };
    f(&mut bencher);
    let label = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    if bencher.iters_run > 0 {
        let mean = bencher.total / bencher.iters_run as u32;
        println!(
            "bench {label:<50} {mean:>12.3?}/iter  (stub harness, {} iters)",
            bencher.iters_run
        );
    } else {
        println!("bench {label:<50} (no iterations)");
    }
}

/// Collect benchmark functions into a runnable group function, like
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the given groups, like
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test`/`cargo bench` pass harness flags; the stub
            // runs the same way regardless.
            $( $group(); )+
        }
    };
}
