//! Minimal vendored substitute for `proptest`.
//!
//! Runs each property over [`CASES`] pseudo-random cases with a
//! deterministic per-test seed (derived from the test's name, so runs
//! are reproducible). No shrinking: a failing case panics with the
//! assertion message directly. The strategy combinators cover what
//! this repository uses — numeric ranges, `any`, tuples, `prop_map`,
//! `collection::vec`, and character-class regex string patterns like
//! `"[a-z0-9]{1,8}"`.

/// Number of generated cases per property.
pub const CASES: usize = 64;

pub mod test_runner {
    //! Deterministic RNG for property generation.

    use rand::rngs::StdRng;
    use rand::{Rng, RngCore, SeedableRng};

    /// The generator handed to strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// A deterministic generator for a named test.
        pub fn for_test(test_name: &str) -> Self {
            // FNV-1a over the name: stable across runs and platforms.
            let mut hash: u64 = 0xcbf29ce484222325;
            for b in test_name.bytes() {
                hash ^= b as u64;
                hash = hash.wrapping_mul(0x100000001b3);
            }
            TestRng(StdRng::seed_from_u64(hash))
        }

        /// Uniform sample in `[low, high)`.
        pub fn range_f64(&mut self, low: f64, high: f64) -> f64 {
            self.0.gen_range(low..high)
        }

        /// Uniform sample in `[low, high)`.
        pub fn range_u64(&mut self, low: u64, high: u64) -> u64 {
            self.0.gen_range(low..high)
        }

        /// Uniform sample in `[low, high)`.
        pub fn range_i64(&mut self, low: i64, high: i64) -> i64 {
            self.0.gen_range(low..high)
        }

        /// Next raw word.
        pub fn word(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use super::test_runner::TestRng;

    /// A recipe producing values of an output type.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with a function.
        fn prop_map<U, F>(self, f: F) -> MapStrategy<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            MapStrategy { inner: self, f }
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct MapStrategy<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for MapStrategy<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.range_f64(self.start, self.end)
        }
    }

    macro_rules! range_strategy_uint {
        ($($ty:ty),*) => {$(
            impl Strategy for std::ops::Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    rng.range_u64(self.start as u64, self.end as u64) as $ty
                }
            }
        )*};
    }

    range_strategy_uint!(u8, u16, u32, u64, usize);

    macro_rules! range_strategy_int {
        ($($ty:ty),*) => {$(
            impl Strategy for std::ops::Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    rng.range_i64(self.start as i64, self.end as i64) as $ty
                }
            }
        )*};
    }

    range_strategy_int!(i8, i16, i32, i64, isize);

    /// Full-domain strategy returned by [`crate::prelude::any`].
    pub struct Any<T>(pub(crate) std::marker::PhantomData<T>);

    macro_rules! any_int {
        ($($ty:ty),*) => {$(
            impl Strategy for Any<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    rng.word() as $ty
                }
            }
        )*};
    }

    any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<bool> {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.word() & 1 == 1
        }
    }

    impl Strategy for Any<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            // Finite, broad-magnitude floats.
            let mantissa = rng.range_f64(-1.0, 1.0);
            let exp = rng.range_i64(-100, 100) as i32;
            mantissa * 2f64.powi(exp)
        }
    }

    /// A fixed value, like `proptest::strategy::Just`.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident : $idx:tt),+)),+) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy!(
        (A: 0, B: 1),
        (A: 0, B: 1, C: 2),
        (A: 0, B: 1, C: 2, D: 3),
        (A: 0, B: 1, C: 2, D: 3, E: 4),
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6),
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
    );

    /// `&str` patterns act as regex-subset string strategies:
    /// sequences of `[class]{m,n}` / `[class]` / literal characters,
    /// where a class holds literal characters and `a-z` style ranges.
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            generate_pattern(self, rng)
        }
    }

    impl Strategy for String {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            generate_pattern(self, rng)
        }
    }

    fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            // Parse one atom: a character class or a literal.
            let class: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"));
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                        for c in lo..=hi {
                            if let Some(c) = char::from_u32(c) {
                                set.push(c);
                            }
                        }
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            } else {
                let c = chars[i];
                i += 1;
                vec![c]
            };
            assert!(!class.is_empty(), "empty character class in {pattern:?}");
            // Optional {n} / {m,n} repetition.
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"));
                let spec: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match spec.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse().expect("repetition min"),
                        n.trim().parse().expect("repetition max"),
                    ),
                    None => {
                        let n: usize = spec.trim().parse().expect("repetition count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            let count = if min == max {
                min
            } else {
                rng.range_u64(min as u64, max as u64 + 1) as usize
            };
            for _ in 0..count {
                let pick = rng.range_u64(0, class.len() as u64) as usize;
                out.push(class[pick]);
            }
        }
        out
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy for `Vec<S::Value>` with length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// A vector strategy: `len` elements of `element`, with `len`
    /// uniform in the given half-open range.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = if self.len.start + 1 >= self.len.end {
                self.len.start
            } else {
                rng.range_u64(self.len.start as u64, self.len.end as u64) as usize
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Full-domain strategy for a primitive type, as `proptest::arbitrary::any`.
    pub fn any<T>() -> crate::strategy::Any<T> {
        crate::strategy::Any(std::marker::PhantomData)
    }
}

/// Define property tests: each runs [`CASES`] generated cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __proptest_rng =
                    $crate::test_runner::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                for __proptest_case in 0..$crate::CASES {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __proptest_rng);
                    )*
                    $body
                }
            }
        )*
    };
}

/// Property assertion (plain `assert!` — no shrinking in the stub).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn pattern_strategy_matches_class_and_counts() {
        let mut rng = TestRng::for_test("pattern");
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z]{1,8}", &mut rng);
            assert!((1..=8).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let t = Strategy::generate(&"[a-z0-9]{0,4}", &mut rng);
            assert!(t.len() <= 4);
            assert!(t
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        let mut c = TestRng::for_test("y");
        let va: Vec<u64> = (0..4).map(|_| a.word()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.word()).collect();
        let vc: Vec<u64> = (0..4).map(|_| c.word()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    proptest! {
        #[test]
        fn macro_generates_cases(x in 0u64..100, f in 0.0..1.0f64, s in "[a-c]{2}") {
            prop_assert!(x < 100);
            prop_assert!((0.0..1.0).contains(&f));
            prop_assert_eq!(s.len(), 2);
        }

        #[test]
        fn tuples_and_vec_and_map(v in crate::collection::vec((0u32..5, "[a-z]{1,3}"), 0..6)) {
            prop_assert!(v.len() < 6);
            for (n, s) in v {
                prop_assert!(n < 5);
                prop_assert!(!s.is_empty());
            }
        }

        #[test]
        fn prop_map_applies(doubled in (0u64..50).prop_map(|n| n * 2)) {
            prop_assert!(doubled % 2 == 0);
            prop_assert!(doubled < 100);
        }
    }
}
