//! Minimal vendored substitute for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API:
//! `lock()`/`read()`/`write()` return guards directly. A poisoned std
//! lock (a panic while held) aborts via `expect`, matching
//! parking_lot's practical behaviour of not propagating poison.

use std::sync::{self, LockResult};

/// Poison-free mutex, API-compatible with `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// A new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        unpoison(self.0.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        unpoison(self.0.lock())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.0.get_mut())
    }
}

/// Poison-free reader-writer lock, API-compatible with
/// `parking_lot::RwLock`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// A new lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        unpoison(self.0.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        unpoison(self.0.read())
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        unpoison(self.0.write())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.0.get_mut())
    }
}

fn unpoison<G>(result: LockResult<G>) -> G {
    result.unwrap_or_else(|_| panic!("lock poisoned (a thread panicked while holding it)"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(vec![1, 2]);
        assert_eq!(lock.read().len(), 2);
        lock.write().push(3);
        assert_eq!(*lock.read(), vec![1, 2, 3]);
        *lock.write() = vec![9];
        assert_eq!(lock.into_inner(), vec![9]);
    }

    #[test]
    fn mutex_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }
}
