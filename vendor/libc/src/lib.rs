//! Minimal vendored substitute for the `libc` crate (Linux only).
//!
//! Declares exactly the types, constants and functions this workspace
//! uses. Layouts and constant values follow the Linux x86_64/aarch64
//! ABI (the two architectures this reproduction targets).

#![allow(non_camel_case_types)]
#![allow(non_snake_case)]
#![allow(non_upper_case_globals)]
#![allow(missing_docs)]

pub type c_char = i8;
pub type c_int = i32;
pub type c_uint = u32;
pub type c_long = i64;
pub type c_ulong = u64;
pub type c_void = std::ffi::c_void;
pub type pid_t = i32;
pub type id_t = u32;
pub type uid_t = u32;
pub type size_t = usize;
pub type ssize_t = isize;
pub type time_t = i64;
pub type suseconds_t = i64;

// errno values (asm-generic, shared by x86_64 and aarch64).
pub const EPERM: c_int = 1;
pub const ENOENT: c_int = 2;
pub const ESRCH: c_int = 3;
pub const EINTR: c_int = 4;
pub const EAGAIN: c_int = 11;
pub const EACCES: c_int = 13;

// Signals.
pub const SIGKILL: c_int = 9;

// flock(2) operations.
pub const LOCK_SH: c_int = 1;
pub const LOCK_EX: c_int = 2;
pub const LOCK_NB: c_int = 4;
pub const LOCK_UN: c_int = 8;

// getrusage(2) targets.
pub const RUSAGE_SELF: c_int = 0;
pub const RUSAGE_CHILDREN: c_int = -1;

// epoll(7) — the readiness API behind the server's reactor front.
pub const EPOLLIN: u32 = 0x001;
pub const EPOLLOUT: u32 = 0x004;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;
pub const EPOLLRDHUP: u32 = 0x2000;
pub const EPOLL_CTL_ADD: c_int = 1;
pub const EPOLL_CTL_DEL: c_int = 2;
pub const EPOLL_CTL_MOD: c_int = 3;
pub const EPOLL_CLOEXEC: c_int = 0o2000000;

// eventfd(2) — the reactor's cross-thread wakeup primitive.
pub const EFD_CLOEXEC: c_int = 0o2000000;
pub const EFD_NONBLOCK: c_int = 0o4000;

// fcntl(2) file-status flags (nonblocking sockets).
pub const F_GETFL: c_int = 3;
pub const F_SETFL: c_int = 4;
pub const O_NONBLOCK: c_int = 0o4000;

// setsockopt(2): the reactor tests clamp SO_RCVBUF to make kernel
// buffering deterministic when exercising stream backpressure.
pub type socklen_t = u32;
pub const SOL_SOCKET: c_int = 1;
pub const SO_RCVBUF: c_int = 8;

// getrlimit(2)/setrlimit(2): the reactor tests raise the fd ceiling
// to hold thousands of concurrent watcher sockets.
pub const RLIMIT_NOFILE: c_int = 7;
pub type rlim_t = u64;

#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct rlimit {
    pub rlim_cur: rlim_t,
    pub rlim_max: rlim_t,
}

// waitid(2) id types and options.
pub const P_PID: c_int = 1;
pub const WNOWAIT: c_int = 0x01000000;
pub const WEXITED: c_int = 0x00000004;

// sysconf(3) names.
pub const _SC_PAGESIZE: c_int = 30;
pub const _SC_CLK_TCK: c_int = 2;

// Syscall numbers.
#[cfg(target_arch = "x86_64")]
pub const SYS_gettid: c_long = 186;
#[cfg(target_arch = "x86_64")]
pub const SYS_perf_event_open: c_long = 298;
#[cfg(target_arch = "aarch64")]
pub const SYS_gettid: c_long = 178;
#[cfg(target_arch = "aarch64")]
pub const SYS_perf_event_open: c_long = 241;

/// Wait-status decoding, as the C `WIFEXITED` macro.
pub fn WIFEXITED(status: c_int) -> bool {
    (status & 0x7f) == 0
}

/// Wait-status decoding, as the C `WEXITSTATUS` macro.
pub fn WEXITSTATUS(status: c_int) -> c_int {
    (status >> 8) & 0xff
}

/// Wait-status decoding, as the C `WIFSIGNALED` macro.
pub fn WIFSIGNALED(status: c_int) -> bool {
    ((status & 0x7f) + 1) >> 1 > 0
}

/// Wait-status decoding, as the C `WTERMSIG` macro.
pub fn WTERMSIG(status: c_int) -> c_int {
    status & 0x7f
}

/// One epoll readiness record. Glibc packs this on x86_64 (so the
/// 64-bit payload sits at offset 4); other architectures use natural
/// alignment — mirror both or `epoll_wait` scribbles over the wrong
/// offsets.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
pub struct epoll_event {
    pub events: u32,
    pub u64: u64,
}

#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct timeval {
    pub tv_sec: time_t,
    pub tv_usec: suseconds_t,
}

#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct rusage {
    pub ru_utime: timeval,
    pub ru_stime: timeval,
    pub ru_maxrss: c_long,
    pub ru_ixrss: c_long,
    pub ru_idrss: c_long,
    pub ru_isrss: c_long,
    pub ru_minflt: c_long,
    pub ru_majflt: c_long,
    pub ru_nswap: c_long,
    pub ru_inblock: c_long,
    pub ru_oublock: c_long,
    pub ru_msgsnd: c_long,
    pub ru_msgrcv: c_long,
    pub ru_nsignals: c_long,
    pub ru_nvcsw: c_long,
    pub ru_nivcsw: c_long,
}

/// Opaque-to-this-workspace `siginfo_t`: callers only zero-initialize
/// it and pass it to `waitid`; the glibc struct is 128 bytes with
/// `c_int` alignment on both target architectures.
#[repr(C)]
#[derive(Clone, Copy)]
pub struct siginfo_t {
    pub si_signo: c_int,
    pub si_errno: c_int,
    pub si_code: c_int,
    _pad: [c_int; 29],
}

impl std::fmt::Debug for siginfo_t {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("siginfo_t")
            .field("si_signo", &self.si_signo)
            .field("si_code", &self.si_code)
            .finish_non_exhaustive()
    }
}

extern "C" {
    pub fn close(fd: c_int) -> c_int;
    pub fn epoll_create1(flags: c_int) -> c_int;
    pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut epoll_event) -> c_int;
    pub fn epoll_wait(
        epfd: c_int,
        events: *mut epoll_event,
        maxevents: c_int,
        timeout: c_int,
    ) -> c_int;
    pub fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    pub fn fcntl(fd: c_int, cmd: c_int, ...) -> c_int;
    pub fn flock(fd: c_int, operation: c_int) -> c_int;
    pub fn getrlimit(resource: c_int, rlim: *mut rlimit) -> c_int;
    pub fn setrlimit(resource: c_int, rlim: *const rlimit) -> c_int;
    pub fn setsockopt(
        sockfd: c_int,
        level: c_int,
        optname: c_int,
        optval: *const c_void,
        optlen: socklen_t,
    ) -> c_int;
    pub fn write(fd: c_int, buf: *const c_void, count: size_t) -> ssize_t;
    pub fn gethostname(name: *mut c_char, len: size_t) -> c_int;
    pub fn getrusage(who: c_int, usage: *mut rusage) -> c_int;
    pub fn ioctl(fd: c_int, request: c_ulong, ...) -> c_int;
    pub fn read(fd: c_int, buf: *mut c_void, count: size_t) -> ssize_t;
    pub fn syscall(num: c_long, ...) -> c_long;
    pub fn sysconf(name: c_int) -> c_long;
    pub fn wait4(pid: pid_t, status: *mut c_int, options: c_int, rusage: *mut rusage) -> pid_t;
    pub fn waitid(idtype: c_int, id: id_t, infop: *mut siginfo_t, options: c_int) -> c_int;
    pub fn kill(pid: pid_t, sig: c_int) -> c_int;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rusage_layout_matches_glibc_size() {
        assert_eq!(std::mem::size_of::<timeval>(), 16);
        assert_eq!(std::mem::size_of::<rusage>(), 144);
        assert_eq!(std::mem::size_of::<siginfo_t>(), 128);
    }

    #[test]
    fn sysconf_answers() {
        let page = unsafe { sysconf(_SC_PAGESIZE) };
        assert!(page == 4096 || page == 16384 || page == 65536, "{page}");
        let hz = unsafe { sysconf(_SC_CLK_TCK) };
        assert!(hz > 0);
    }

    #[test]
    fn getrusage_self_works() {
        let mut ru: rusage = unsafe { std::mem::zeroed() };
        let rc = unsafe { getrusage(RUSAGE_SELF, &mut ru) };
        assert_eq!(rc, 0);
        assert!(ru.ru_maxrss > 0);
    }

    #[test]
    fn wait_status_macros() {
        // Normal exit with code 7 → status 0x0700.
        assert!(WIFEXITED(0x0700));
        assert_eq!(WEXITSTATUS(0x0700), 7);
        assert!(!WIFSIGNALED(0x0700));
        // Killed by SIGKILL → status 9.
        assert!(!WIFEXITED(9));
        assert!(WIFSIGNALED(9));
        assert_eq!(WTERMSIG(9), SIGKILL);
    }

    #[test]
    fn gettid_syscall() {
        let tid = unsafe { syscall(SYS_gettid) };
        assert!(tid > 0);
    }

    #[test]
    fn epoll_event_layout_matches_glibc() {
        // Packed on x86_64 (12 bytes), naturally aligned elsewhere.
        #[cfg(target_arch = "x86_64")]
        assert_eq!(std::mem::size_of::<epoll_event>(), 12);
        #[cfg(not(target_arch = "x86_64"))]
        assert_eq!(std::mem::size_of::<epoll_event>(), 16);
    }

    #[test]
    fn eventfd_wakes_epoll() {
        // The reactor's wakeup path end to end: an eventfd write makes
        // the fd readable through epoll, and reading it drains the
        // counter.
        unsafe {
            let ep = epoll_create1(EPOLL_CLOEXEC);
            assert!(ep >= 0);
            let ev = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
            assert!(ev >= 0);
            let mut reg = epoll_event {
                events: EPOLLIN,
                u64: 42,
            };
            assert_eq!(epoll_ctl(ep, EPOLL_CTL_ADD, ev, &mut reg), 0);

            // Nothing pending: epoll_wait times out empty.
            let mut out = [epoll_event { events: 0, u64: 0 }; 4];
            assert_eq!(epoll_wait(ep, out.as_mut_ptr(), 4, 0), 0);

            // A wake is observed with the registered token.
            let one: u64 = 1;
            assert_eq!(
                write(ev, (&one as *const u64).cast(), 8),
                8,
                "eventfd write"
            );
            let n = epoll_wait(ep, out.as_mut_ptr(), 4, 1000);
            assert_eq!(n, 1);
            assert_eq!({ out[0].u64 }, 42);
            assert_ne!({ out[0].events } & EPOLLIN, 0);

            // Draining resets readiness.
            let mut counter: u64 = 0;
            assert_eq!(read(ev, (&mut counter as *mut u64).cast(), 8), 8);
            assert_eq!(counter, 1);
            assert_eq!(epoll_wait(ep, out.as_mut_ptr(), 4, 0), 0);

            close(ev);
            close(ep);
        }
    }

    #[test]
    fn fcntl_toggles_nonblocking() {
        unsafe {
            let ev = eventfd(0, 0);
            assert!(ev >= 0);
            let flags = fcntl(ev, F_GETFL);
            assert!(flags >= 0);
            assert_eq!(flags & O_NONBLOCK, 0);
            assert_eq!(fcntl(ev, F_SETFL, flags | O_NONBLOCK), 0);
            assert_ne!(fcntl(ev, F_GETFL) & O_NONBLOCK, 0);
            close(ev);
        }
    }

    #[test]
    fn setsockopt_clamps_rcvbuf() {
        use std::os::unix::io::AsRawFd;
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let size: c_int = 4096;
        let rc = unsafe {
            setsockopt(
                listener.as_raw_fd(),
                SOL_SOCKET,
                SO_RCVBUF,
                (&size as *const c_int).cast(),
                std::mem::size_of::<c_int>() as socklen_t,
            )
        };
        assert_eq!(rc, 0);
    }

    #[test]
    fn rlimit_nofile_is_readable() {
        let mut lim = rlimit {
            rlim_cur: 0,
            rlim_max: 0,
        };
        assert_eq!(unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) }, 0);
        assert!(lim.rlim_cur > 0 && lim.rlim_cur <= lim.rlim_max);
    }
}
