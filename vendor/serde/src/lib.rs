//! Minimal vendored substitute for the `serde` crate.
//!
//! The build environment has no network access, so this workspace
//! vendors the small serde surface the code base actually uses. The
//! design is value-model based (like `miniserde`): [`Serialize`]
//! converts a value into a JSON-shaped [`Value`] tree and
//! [`Deserialize`] reads one back. The derive macros in the companion
//! `serde_derive` crate generate those impls for structs with named
//! fields, newtype structs and unit-variant enums, which covers every
//! derived type in this repository. `serde_json` (also vendored)
//! provides the textual JSON layer on top.

use std::collections::{BTreeMap, HashMap};

pub use serde_derive::{Deserialize, Serialize};

/// The JSON-shaped data model shared by `serde` and `serde_json`.
///
/// Numbers keep their integer/float identity like `serde_json::Value`
/// does: integers compare equal across signedness when mathematically
/// equal, floats never compare equal to integers.
#[derive(Debug, Clone)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer above `i64::MAX`.
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object (sorted keys, deterministic serialization).
    Object(BTreeMap<String, Value>),
}

impl PartialEq for Value {
    fn eq(&self, other: &Value) -> bool {
        use Value::*;
        match (self, other) {
            (Null, Null) => true,
            (Bool(a), Bool(b)) => a == b,
            (Str(a), Str(b)) => a == b,
            (Array(a), Array(b)) => a == b,
            (Object(a), Object(b)) => a == b,
            (I64(a), I64(b)) => a == b,
            (U64(a), U64(b)) => a == b,
            (F64(a), F64(b)) => a == b,
            (I64(a), U64(b)) | (U64(b), I64(a)) => u64::try_from(*a) == Ok(*b),
            _ => false,
        }
    }
}

impl Value {
    /// Member lookup on objects (`None` for other variants).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// Element lookup on arrays (`None` for other variants).
    pub fn get_index(&self, idx: usize) -> Option<&Value> {
        match self {
            Value::Array(a) => a.get(idx),
            _ => None,
        }
    }

    /// The value as an `i64`, when integral and in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(n) => Some(*n),
            Value::U64(n) => i64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The value as a `u64`, when integral and non-negative.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::I64(n) => u64::try_from(*n).ok(),
            Value::U64(n) => Some(*n),
            _ => None,
        }
    }

    /// Any numeric value as an `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::I64(n) => Some(*n as f64),
            Value::U64(n) => Some(*n as f64),
            Value::F64(n) => Some(*n),
            _ => None,
        }
    }

    /// String content, when a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean content, when a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array content, when an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Object content, when an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Variant name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Object content or a type error (used by derived impls).
    pub fn object_or_err(&self, ty: &str) -> Result<&BTreeMap<String, Value>, Error> {
        self.as_object()
            .ok_or_else(|| Error::new(format!("expected object for {ty}, found {}", self.kind())))
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        self.get_index(idx).unwrap_or(&NULL)
    }
}

macro_rules! value_eq_prim {
    ($ty:ty, $conv:expr) => {
        impl PartialEq<$ty> for Value {
            fn eq(&self, other: &$ty) -> bool {
                self == &$conv(other.clone())
            }
        }
        impl PartialEq<Value> for $ty {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    };
}

value_eq_prim!(i64, Value::I64);
value_eq_prim!(f64, Value::F64);
value_eq_prim!(bool, Value::Bool);
value_eq_prim!(String, Value::Str);

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

macro_rules! value_from_int {
    ($($ty:ty),*) => {$(
        impl From<$ty> for Value {
            fn from(v: $ty) -> Value {
                Value::I64(v as i64)
            }
        }
    )*};
}

value_from_int!(i8, i16, i32, i64, isize, u8, u16, u32);

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        match i64::try_from(v) {
            Ok(n) => Value::I64(n),
            Err(_) => Value::U64(v),
        }
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::from(v as u64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::F64(v)
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::F64(v as f64)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Value {
        Value::Array(v)
    }
}

impl From<BTreeMap<String, Value>> for Value {
    fn from(v: BTreeMap<String, Value>) -> Value {
        Value::Object(v)
    }
}

/// Shared (de)serialization error: a plain message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// An error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }

    /// Standard "missing field" error used by derived impls.
    pub fn missing_field(ty: &str, field: &str) -> Self {
        Error(format!("missing field `{field}` for {ty}"))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serialize into the shared [`Value`] data model.
pub trait Serialize {
    /// Convert `self` into a [`Value`] tree.
    fn serialize_value(&self) -> Value;
}

/// Deserialize from the shared [`Value`] data model.
///
/// The lifetime parameter exists only for signature compatibility with
/// real serde bounds like `for<'de> Deserialize<'de>`; this vendored
/// substitute always produces owned data.
pub trait Deserialize<'de>: Sized {
    /// Read `Self` out of a [`Value`] tree.
    fn deserialize(value: &Value) -> Result<Self, Error>;
}

macro_rules! serde_int {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn serialize_value(&self) -> Value {
                Value::from(*self)
            }
        }
        impl<'de> Deserialize<'de> for $ty {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let n = value
                    .as_i64()
                    .map(i128::from)
                    .or_else(|| value.as_u64().map(i128::from))
                    .ok_or_else(|| {
                        Error::new(format!("expected integer, found {}", value.kind()))
                    })?;
                <$ty>::try_from(n)
                    .map_err(|_| Error::new(format!("integer {n} out of range for {}", stringify!($ty))))
            }
        }
    )*};
}

serde_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! serde_float {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn serialize_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl<'de> Deserialize<'de> for $ty {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                // `null` reads back as NaN: JSON has no NaN/Infinity
                // literal, so non-finite floats serialize to null.
                if value.is_null() {
                    return Ok(<$ty>::NAN);
                }
                value
                    .as_f64()
                    .map(|f| f as $ty)
                    .ok_or_else(|| Error::new(format!("expected number, found {}", value.kind())))
            }
        }
    )*};
}

serde_float!(f32, f64);

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error::new(format!("expected boolean, found {}", value.kind())))
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::new(format!("expected string, found {}", value.kind())))
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<'de> Deserialize<'de> for &'static str {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        // Only needed so `#[derive(Deserialize)]` compiles on registry
        // types with `&'static str` fields; deserializing one leaks the
        // string (acceptable for this offline substitute).
        String::deserialize(value).map(|s| &*Box::leak(s.into_boxed_str()))
    }
}

impl Serialize for char {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let s = value
            .as_str()
            .ok_or_else(|| Error::new(format!("expected string, found {}", value.kind())))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::new("expected single-character string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(v) => v.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        if value.is_null() {
            Ok(None)
        } else {
            T::deserialize(value).map(Some)
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            other => Err(Error::new(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        T::deserialize(value).map(Box::new)
    }
}

/// Serialize a map key: maps in the JSON data model need string keys,
/// so the key's serialized form must be a string (as it is for `String`
/// keys and unit-variant enums, exactly like real `serde_json`).
fn key_to_string(key: &impl Serialize) -> Value {
    key.serialize_value()
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize_value(&self) -> Value {
        let mut out = BTreeMap::new();
        for (k, v) in self {
            match key_to_string(k) {
                Value::Str(s) => out.insert(s, v.serialize_value()),
                other => panic!("map key must serialize to a string, got {}", other.kind()),
            };
        }
        Value::Object(out)
    }
}

impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<K, V> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let obj = value.object_or_err("map")?;
        let mut out = BTreeMap::new();
        for (k, v) in obj {
            let key = K::deserialize(&Value::Str(k.clone()))?;
            out.insert(key, V::deserialize(v)?);
        }
        Ok(out)
    }
}

impl<K: Serialize + Eq + std::hash::Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize_value(&self) -> Value {
        let mut out = BTreeMap::new();
        for (k, v) in self {
            match key_to_string(k) {
                Value::Str(s) => out.insert(s, v.serialize_value()),
                other => panic!("map key must serialize to a string, got {}", other.kind()),
            };
        }
        Value::Object(out)
    }
}

impl<'de, K, V> Deserialize<'de> for HashMap<K, V>
where
    K: Deserialize<'de> + Eq + std::hash::Hash,
    V: Deserialize<'de>,
{
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let obj = value.object_or_err("map")?;
        let mut out = HashMap::with_capacity(obj.len());
        for (k, v) in obj {
            let key = K::deserialize(&Value::Str(k.clone()))?;
            out.insert(key, V::deserialize(v)?);
        }
        Ok(out)
    }
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl Serialize for () {
    fn serialize_value(&self) -> Value {
        Value::Null
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        if value.is_null() {
            Ok(())
        } else {
            Err(Error::new(format!("expected null, found {}", value.kind())))
        }
    }
}

macro_rules! serde_tuple {
    ($(($($name:ident : $idx:tt),+)),+) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize_value()),+])
            }
        }
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                const LEN: usize = [$($idx),+].len();
                match value {
                    Value::Array(items) if items.len() == LEN => {
                        Ok(($($name::deserialize(&items[$idx])?,)+))
                    }
                    Value::Array(items) => Err(Error::new(format!(
                        "expected array of {LEN}, found {}",
                        items.len()
                    ))),
                    other => Err(Error::new(format!("expected array, found {}", other.kind()))),
                }
            }
        }
    )+};
}

serde_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3)
);

/// Compatibility alias: real serde exposes `de::DeserializeOwned`.
pub mod de {
    /// Owned deserialization marker, as in real serde.
    pub trait DeserializeOwned: for<'de> super::Deserialize<'de> {}
    impl<T: for<'de> super::Deserialize<'de>> DeserializeOwned for T {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_equality_across_int_widths() {
        assert_eq!(Value::I64(7), Value::U64(7));
        assert_ne!(Value::I64(7), Value::F64(7.0));
        assert_ne!(Value::I64(-1), Value::U64(u64::MAX));
    }

    #[test]
    fn index_missing_yields_null() {
        let v = Value::Object(BTreeMap::new());
        assert!(v["nope"].is_null());
        assert!(Value::Null["x"].is_null());
    }

    #[test]
    fn option_roundtrip() {
        let some = Some(3.5f64).serialize_value();
        assert_eq!(Option::<f64>::deserialize(&some).unwrap(), Some(3.5));
        assert_eq!(Option::<f64>::deserialize(&Value::Null).unwrap(), None);
    }

    #[test]
    fn map_with_string_keys_roundtrips() {
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1u64);
        let v = m.serialize_value();
        let back: BTreeMap<String, u64> = Deserialize::deserialize(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn integer_range_checks() {
        let big = Value::U64(u64::MAX);
        assert!(i64::deserialize(&big).is_err());
        assert_eq!(u64::deserialize(&big).unwrap(), u64::MAX);
        assert!(u32::deserialize(&Value::I64(-1)).is_err());
    }
}
