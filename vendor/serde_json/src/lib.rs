//! Minimal vendored substitute for `serde_json`.
//!
//! Textual JSON on top of the value model defined in the vendored
//! `serde` crate: a recursive-descent parser, a deterministic compact
//! printer (object keys are sorted because the model stores objects in
//! a `BTreeMap`), and the `json!` construction macro. Covers the API
//! surface this repository uses: `to_string`, `to_string_pretty`,
//! `from_str`, `to_value`, `from_value`, `Value`, `Map` and `json!`.

use std::fmt::Write as _;

pub use serde::Value;

/// Map type used for `Value::Object`, generic like real serde_json's.
pub type Map<K, V> = std::collections::BTreeMap<K, V>;

/// JSON (de)serialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.serialize_value())
}

/// Read a typed value out of a [`Value`] tree.
pub fn from_value<T: for<'de> serde::Deserialize<'de>>(value: Value) -> Result<T, Error> {
    Ok(T::deserialize(&value)?)
}

/// Serialize to a compact JSON string (object keys sorted, stable float
/// formatting — deterministic for identical inputs).
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), None, 0);
    Ok(out)
}

/// Serialize to a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), Some(2), 0);
    Ok(out)
}

/// Parse a JSON string into a typed value.
pub fn from_str<T: for<'de> serde::Deserialize<'de>>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::deserialize(&value)?)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(f) => write_f64(out, *f),
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_sep(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            if !items.is_empty() {
                write_sep(out, indent, depth);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_sep(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            if !map.is_empty() {
                write_sep(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn write_sep(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

/// JSON has no NaN/Infinity literal; mirror real serde_json by writing
/// `null` for non-finite floats. Finite floats use Rust's shortest
/// round-trip `Display`, with a `.0` suffix for integral values so the
/// number reads back as a float.
fn write_f64(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e16 {
        let _ = write!(out, "{f:.1}");
    } else {
        let _ = write!(out, "{f}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error::new(format!(
                "unexpected character {:?} at byte {}",
                b as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pair handling.
                            if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (low.wrapping_sub(0xDC00) & 0x3FF);
                                    out.push(
                                        char::from_u32(combined)
                                            .ok_or_else(|| Error::new("invalid surrogate pair"))?,
                                    );
                                } else {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                            } else {
                                out.push(
                                    char::from_u32(cp)
                                        .ok_or_else(|| Error::new("invalid \\u escape"))?,
                                );
                            }
                        }
                        other => {
                            return Err(Error::new(format!(
                                "invalid escape character {:?}",
                                other as char
                            )))
                        }
                    }
                }
                Some(b) if b < 0x20 => return Err(Error::new("control character in string")),
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let s = std::str::from_utf8(slice).map_err(|_| Error::new("invalid \\u escape"))?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number {text:?}")))
    }
}

/// Construct a [`Value`] from JSON-like syntax.
///
/// Object values may be nested `{...}`/`[...]` literals, `null`, or
/// any Rust expression implementing `serde::Serialize`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($tt:tt)* ]) => {{
        #[allow(clippy::vec_init_then_push)]
        let items = {
            let mut items = ::std::vec::Vec::new();
            $crate::json_internal!(@arr items () $($tt)*);
            items
        };
        $crate::Value::Array(items)
    }};
    ({ $($tt:tt)* }) => {{
        let mut map = $crate::Map::new();
        $crate::json_internal!(@obj map () $($tt)*);
        $crate::Value::Object(map)
    }};
    ($other:expr) => {
        $crate::to_value(&$other).unwrap()
    };
}

/// Implementation detail of [`json!`]: a token muncher for object and
/// array bodies, so values can be arbitrary expressions *or* nested
/// JSON literals.
#[macro_export]
#[doc(hidden)]
macro_rules! json_internal {
    // ---- objects: accumulate the key, then dispatch on value shape.
    (@obj $map:ident ()) => {};
    (@obj $map:ident () $key:tt : $($rest:tt)*) => {
        $crate::json_internal!(@objval $map ($key) $($rest)*)
    };
    (@objval $map:ident ($key:tt) null $(, $($rest:tt)*)?) => {
        $map.insert($key.to_string(), $crate::Value::Null);
        $crate::json_internal!(@obj $map () $($($rest)*)?);
    };
    (@objval $map:ident ($key:tt) { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $map.insert($key.to_string(), $crate::json!({ $($inner)* }));
        $crate::json_internal!(@obj $map () $($($rest)*)?);
    };
    (@objval $map:ident ($key:tt) [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $map.insert($key.to_string(), $crate::json!([ $($inner)* ]));
        $crate::json_internal!(@obj $map () $($($rest)*)?);
    };
    (@objval $map:ident ($key:tt) $val:expr , $($rest:tt)*) => {
        $map.insert($key.to_string(), $crate::to_value(&$val).unwrap());
        $crate::json_internal!(@obj $map () $($rest)*);
    };
    (@objval $map:ident ($key:tt) $val:expr) => {
        $map.insert($key.to_string(), $crate::to_value(&$val).unwrap());
    };
    // ---- arrays.
    (@arr $items:ident ()) => {};
    (@arr $items:ident () null $(, $($rest:tt)*)?) => {
        $items.push($crate::Value::Null);
        $crate::json_internal!(@arr $items () $($($rest)*)?);
    };
    (@arr $items:ident () { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $items.push($crate::json!({ $($inner)* }));
        $crate::json_internal!(@arr $items () $($($rest)*)?);
    };
    (@arr $items:ident () [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $items.push($crate::json!([ $($inner)* ]));
        $crate::json_internal!(@arr $items () $($($rest)*)?);
    };
    (@arr $items:ident () $val:expr , $($rest:tt)*) => {
        $items.push($crate::to_value(&$val).unwrap());
        $crate::json_internal!(@arr $items () $($rest)*);
    };
    (@arr $items:ident () $val:expr) => {
        $items.push($crate::to_value(&$val).unwrap());
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_printing_is_sorted_and_stable() {
        let v = json!({"b": 2, "a": 1, "nested": {"y": true, "x": null}});
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"a":1,"b":2,"nested":{"x":null,"y":true}}"#
        );
    }

    #[test]
    fn parse_roundtrip() {
        let text = r#"{"a":[1,2.5,"x\n",null,true],"b":{"c":-7}}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"a":[1,2.5,"x\n",null,true],"b":{"c":-7}}"#
        );
    }

    #[test]
    fn float_formats_roundtrip() {
        for f in [0.1, 2.0, -3.25, 1e300, 1e-300, 12.5, 0.0] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back, f, "{s}");
        }
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn json_macro_expression_values() {
        let n = 41;
        let v = json!({"n": n + 1, "s": "v".repeat(3), "list": [1, n, {"deep": null}]});
        assert_eq!(v["n"], 42);
        assert_eq!(v["s"], "vvv");
        assert_eq!(v["list"][2]["deep"], Value::Null);
    }

    #[test]
    fn big_u64_preserved() {
        let big = u64::MAX;
        let s = to_string(&big).unwrap();
        let back: u64 = from_str(&s).unwrap();
        assert_eq!(back, big);
    }

    #[test]
    fn unicode_escapes() {
        let v: Value = from_str(r#""aé😀b""#).unwrap();
        assert_eq!(v, "aé😀b");
    }

    #[test]
    fn pretty_printing_indents() {
        let v = json!({"a": [1]});
        assert_eq!(
            to_string_pretty(&v).unwrap(),
            "{\n  \"a\": [\n    1\n  ]\n}"
        );
    }
}
