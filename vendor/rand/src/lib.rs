//! Minimal vendored substitute for the `rand` crate.
//!
//! Provides the deterministic seeded RNG surface this repository uses:
//! `rngs::StdRng`, `SeedableRng::seed_from_u64` and
//! `Rng::gen_range(low..high)` for the primitive numeric types. The
//! generator is xoshiro256** seeded through SplitMix64 — statistically
//! solid for simulation noise, *not* cryptographic, and intentionally
//! independent of real rand's stream (callers only rely on
//! reproducibility, not on specific sequences).

/// Core RNG interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next uniform 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, as in real rand.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling helpers layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `[range.start, range.end)`.
    ///
    /// Panics when the range is empty, like real rand.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        assert!(range.start < range.end, "gen_range called with empty range");
        T::sample(self, range.start, range.end)
    }

    /// A uniform value of the target type (full range for integers,
    /// `[0, 1)` for floats).
    fn gen<T: SampleUniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_any(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform sample in `[low, high)`.
    fn sample<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform sample over the type's natural full domain.
    fn sample_any<R: RngCore>(rng: &mut R) -> Self;
}

impl SampleUniform for f64 {
    fn sample<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self {
        let unit = Self::sample_any(rng);
        // `low + unit * width` can round up to `high` for extreme
        // widths; clamp to keep the half-open contract.
        let v = low + unit * (high - low);
        if v >= high {
            low.max(high - (high - low) * f64::EPSILON)
        } else {
            v
        }
    }

    fn sample_any<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleUniform for f32 {
    fn sample<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self {
        f64::sample(rng, low as f64, high as f64) as f32
    }

    fn sample_any<R: RngCore>(rng: &mut R) -> Self {
        f64::sample_any(rng) as f32
    }
}

macro_rules! sample_uniform_int {
    ($($ty:ty => $wide:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as $wide).wrapping_sub(low as $wide) as u64;
                // Multiply-shift rejection-free mapping (Lemire); the
                // modulo bias is < 2^-64 * span, negligible here.
                let word = rng.next_u64();
                let offset = ((word as u128 * span as u128) >> 64) as u64;
                ((low as $wide).wrapping_add(offset as $wide)) as $ty
            }

            fn sample_any<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}

sample_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard seeded generator: xoshiro256** with SplitMix64
    /// seeding.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub use rngs::StdRng as DefaultRng;

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::StdRng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn float_range_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-0.25..0.25f64);
            assert!((-0.25..0.25).contains(&v), "{v}");
        }
    }

    #[test]
    fn float_range_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0f64)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "{mean}");
    }

    #[test]
    fn int_ranges_cover_and_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v = rng.gen_range(0usize..5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let v = rng.gen_range(-3i64..3);
            assert!((-3..3).contains(&v));
        }
    }
}
