//! Derive macros for the vendored `serde` facade.
//!
//! Implemented without `syn`/`quote` (offline build): the input token
//! stream is walked directly and the generated impls are assembled as
//! source text. Supported shapes — the only ones this repository
//! derives on:
//!
//! * structs with named fields (honouring `#[serde(default)]`, and
//!   treating missing `Option<...>` fields as `None`),
//! * tuple structs (newtypes serialize transparently, wider tuples as
//!   arrays),
//! * enums whose variants are all unit variants (serialized as the
//!   variant-name string, like real serde's external tagging).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed field of a named struct.
struct Field {
    name: String,
    /// `#[serde(default)]` present, or the field type is `Option<..>`.
    default_on_missing: bool,
}

enum Shape {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
    Enum(Vec<String>),
}

struct Input {
    name: String,
    shape: Shape,
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Collect the attributes preceding an item/field, reporting whether a
/// `#[serde(default)]` marker was among them. Returns the index of the
/// first non-attribute token.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> (usize, bool) {
    let mut has_default = false;
    while i + 1 < tokens.len() {
        let TokenTree::Punct(p) = &tokens[i] else {
            break;
        };
        if p.as_char() != '#' {
            break;
        }
        let TokenTree::Group(g) = &tokens[i + 1] else {
            break;
        };
        if g.delimiter() != Delimiter::Bracket {
            break;
        }
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        if let Some(TokenTree::Ident(id)) = inner.first() {
            if id.to_string() == "serde" {
                if let Some(TokenTree::Group(args)) = inner.get(1) {
                    if args.stream().to_string().contains("default") {
                        has_default = true;
                    }
                }
            }
        }
        i += 2;
    }
    (i, has_default)
}

/// Skip a visibility modifier (`pub`, `pub(crate)`, ...).
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Split a token slice on top-level commas, tracking `<...>` depth so
/// commas inside generic arguments do not split.
fn split_top_level_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle_depth = 0i32;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    out.push(std::mem::take(&mut cur));
                    continue;
                }
                _ => {}
            }
        }
        cur.push(t.clone());
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (next, has_default) = skip_attrs(&tokens, i);
        i = skip_vis(&tokens, next);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            return Err(format!(
                "expected field name, got {:?}",
                tokens.get(i).map(|t| t.to_string())
            ));
        };
        let name = name.to_string();
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, got {:?}",
                    other.map(|t| t.to_string())
                ))
            }
        }
        // Scan the type, depth-tracking `<...>` so a comma inside
        // generic arguments does not end the field.
        let mut angle_depth = 0i32;
        let mut is_option = false;
        if let Some(TokenTree::Ident(first)) = tokens.get(i) {
            if first.to_string() == "Option" {
                is_option = true;
            }
        }
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field {
            name,
            default_on_missing: has_default || is_option,
        });
    }
    Ok(fields)
}

fn parse_enum_variants(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (next, _) = skip_attrs(&tokens, i);
        i = next;
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            return Err("expected enum variant name".into());
        };
        variants.push(name.to_string());
        i += 1;
        match tokens.get(i) {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(TokenTree::Group(_)) => {
                return Err(
                    "only unit enum variants are supported by the vendored serde derive".into(),
                )
            }
            Some(other) => return Err(format!("unexpected token `{other}` in enum body")),
        }
    }
    Ok(variants)
}

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (i, _) = skip_attrs(&tokens, 0);
    let mut i = skip_vis(&tokens, i);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => {
            return Err(format!(
                "expected `struct` or `enum`, got {:?}",
                other.map(|t| t.to_string())
            ))
        }
    };
    i += 1;
    let Some(TokenTree::Ident(name)) = tokens.get(i) else {
        return Err("expected type name".into());
    };
    let name = name.to_string();
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err("generic types are not supported by the vendored serde derive".into());
        }
    }
    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Input {
                name,
                shape: Shape::Named(parse_named_fields(g.stream())?),
            }),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity =
                    split_top_level_commas(&g.stream().into_iter().collect::<Vec<_>>()).len();
                Ok(Input {
                    name,
                    shape: Shape::Tuple(arity),
                })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Input {
                name,
                shape: Shape::Unit,
            }),
            other => Err(format!(
                "unsupported struct body: {:?}",
                other.map(|t| t.to_string())
            )),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Input {
                name,
                shape: Shape::Enum(parse_enum_variants(g.stream())?),
            }),
            other => Err(format!(
                "unsupported enum body: {:?}",
                other.map(|t| t.to_string())
            )),
        },
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

/// Derive `serde::Serialize` (vendored value-model flavour).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = match parse_input(input) {
        Ok(p) => p,
        Err(e) => return compile_error(&e),
    };
    let name = &parsed.name;
    let body = match &parsed.shape {
        Shape::Named(fields) => {
            let mut s = String::from("let mut map = ::std::collections::BTreeMap::new();\n");
            for f in fields {
                s.push_str(&format!(
                    "map.insert({n:?}.to_string(), ::serde::Serialize::serialize_value(&self.{n}));\n",
                    n = f.name
                ));
            }
            s.push_str("::serde::Value::Object(map)");
            s
        }
        Shape::Tuple(1) => "::serde::Serialize::serialize_value(&self.0)".to_string(),
        Shape::Tuple(arity) => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::serialize_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::Unit => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let mut s = String::from("match self {\n");
            for v in variants {
                s.push_str(&format!(
                    "{name}::{v} => ::serde::Value::Str({v:?}.to_string()),\n"
                ));
            }
            s.push('}');
            s
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}"
    )
    .parse()
    .unwrap()
}

/// Derive `serde::Deserialize` (vendored value-model flavour).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = match parse_input(input) {
        Ok(p) => p,
        Err(e) => return compile_error(&e),
    };
    let name = &parsed.name;
    let body = match &parsed.shape {
        Shape::Named(fields) => {
            let mut s = format!("let obj = value.object_or_err({name:?})?;\n");
            s.push_str(&format!("::std::result::Result::Ok({name} {{\n"));
            for f in fields {
                let missing = if f.default_on_missing {
                    "::std::default::Default::default()".to_string()
                } else {
                    format!(
                        "return ::std::result::Result::Err(::serde::Error::missing_field({name:?}, {n:?}))",
                        n = f.name
                    )
                };
                s.push_str(&format!(
                    "{n}: match obj.get({n:?}) {{\n\
                     ::std::option::Option::Some(fv) => <_ as ::serde::Deserialize>::deserialize(fv)?,\n\
                     ::std::option::Option::None => {missing},\n\
                     }},\n",
                    n = f.name
                ));
            }
            s.push_str("})");
            s
        }
        Shape::Tuple(1) => format!(
            "::std::result::Result::Ok({name}(<_ as ::serde::Deserialize>::deserialize(value)?))"
        ),
        Shape::Tuple(arity) => {
            let mut s = format!(
                "let items = match value {{\n\
                 ::serde::Value::Array(items) if items.len() == {arity} => items,\n\
                 other => return ::std::result::Result::Err(::serde::Error::new(\
                 format!(\"expected array of {arity} for {name}, found {{}}\", other.kind()))),\n\
                 }};\n"
            );
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("<_ as ::serde::Deserialize>::deserialize(&items[{i}])?"))
                .collect();
            s.push_str(&format!(
                "::std::result::Result::Ok({name}({}))",
                items.join(", ")
            ));
            s
        }
        Shape::Unit => format!("::std::result::Result::Ok({name})"),
        Shape::Enum(variants) => {
            let mut s = String::from("match value.as_str() {\n");
            for v in variants {
                s.push_str(&format!(
                    "::std::option::Option::Some({v:?}) => ::std::result::Result::Ok({name}::{v}),\n"
                ));
            }
            s.push_str(&format!(
                "::std::option::Option::Some(other) => ::std::result::Result::Err(\
                 ::serde::Error::new(format!(\"unknown {name} variant {{other:?}}\"))),\n\
                 ::std::option::Option::None => ::std::result::Result::Err(\
                 ::serde::Error::new(format!(\"expected string for {name}, found {{}}\", value.kind()))),\n}}"
            ));
            s
        }
    };
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
         fn deserialize(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n}}"
    )
    .parse()
    .unwrap()
}
